open Asim_core
module Analysis = Asim_analysis.Analysis
module Width = Asim_analysis.Width

type net = int

(* Every net has one driver.  [State] nets are written at the clock edge
   (flip-flop outputs, macro outputs) or by a combinational macro triggered
   during evaluation; everything else is a two-input gate or inverter
   evaluated in net-id order. *)
type driver =
  | Const of bool
  | And of net * net
  | Or of net * net
  | Xor of net * net
  | Not of net
  | State

type dff = { d : net; q : net }

type macro_kind =
  | M_memory of {
      mem_name : string;
      cells : int array;
      addr : net array;
      data : net array;
      op : net array;
      io : Asim_sim.Io.handler;
    }
  | M_alu of { fn : net array; left : net array; right : net array }

type macro = { m_kind : macro_kind; m_out : net array }

type realization =
  | R_gates of int  (** gate count used *)
  | R_register of int  (** flip-flop count *)
  | R_macro of string

type output = {
  o_name : string;
  o_nets : net array;
  o_memory : bool;
  mutable o_sample : int;
      (** combinational value sampled at the end of the evaluation phase —
          wire aliases of state nets would otherwise read post-clock *)
}

type t = {
  drivers : driver array;
  values : bool array;
  dffs : dff array;
  clocked_macros : macro array;  (** memory macros, in declaration order *)
  comb_triggers : (net, macro) Hashtbl.t;
      (** combinational ALU macros, run when evaluation reaches their first
          output net *)
  outputs : output list;
  realizations : (string * realization) list;
  mutable cycle : int;
}

type stats = {
  gate_count : int;
  dff_count : int;
  macro_count : int;
}

(* ------------------------------------------------------------------ *)
(* Builder                                                             *)
(* ------------------------------------------------------------------ *)

type builder = {
  mutable drv : driver array;
  mutable count : int;
  mutable b_dffs : dff list;
  mutable b_clocked : macro list;
  b_triggers : (net, macro) Hashtbl.t;
  mutable b_outputs : (string * net array) list;
  mutable b_real : (string * realization) list;
  mutable gates_in_flight : int;  (** gates emitted for the current component *)
  zero : net;
  one : net;
}

let add b driver =
  if b.count = Array.length b.drv then begin
    let bigger = Array.make (max 64 (2 * b.count)) State in
    Array.blit b.drv 0 bigger 0 b.count;
    b.drv <- bigger
  end;
  b.drv.(b.count) <- driver;
  b.count <- b.count + 1;
  b.count - 1

let new_builder () =
  let b =
    {
      drv = Array.make 1024 State;
      count = 0;
      b_dffs = [];
      b_clocked = [];
      b_triggers = Hashtbl.create 16;
      b_outputs = [];
      b_real = [];
      gates_in_flight = 0;
      zero = 0;
      one = 0;
    }
  in
  let zero = add b (Const false) in
  let one = add b (Const true) in
  { b with zero; one }

let is_const b n v =
  match b.drv.(n) with Const c -> c = v | _ -> false

let gate b make a c =
  b.gates_in_flight <- b.gates_in_flight + 1;
  add b (make a c)

(* Light constant folding keeps enabled-register muxes and padded adders
   from exploding into dead gates. *)
let g_and b a c =
  if is_const b a false || is_const b c false then b.zero
  else if is_const b a true then c
  else if is_const b c true then a
  else gate b (fun x y -> And (x, y)) a c

let g_or b a c =
  if is_const b a true || is_const b c true then b.one
  else if is_const b a false then c
  else if is_const b c false then a
  else gate b (fun x y -> Or (x, y)) a c

let g_xor b a c =
  if is_const b a false then c
  else if is_const b c false then a
  else if is_const b a true then gate b (fun x _ -> Not x) c b.zero
  else if is_const b c true then gate b (fun x _ -> Not x) a b.zero
  else gate b (fun x y -> Xor (x, y)) a c

let g_not b a =
  if is_const b a false then b.one
  else if is_const b a true then b.zero
  else gate b (fun x _ -> Not x) a b.zero

(* s ? hi : lo *)
let g_mux b s lo hi =
  if lo = hi then lo
  else if is_const b s false then lo
  else if is_const b s true then hi
  else g_or b (g_and b (g_not b s) lo) (g_and b s hi)

let vec_bit b v i = if i < Array.length v then v.(i) else b.zero

let const_vector b ~width value =
  Array.init width (fun i -> if (value lsr i) land 1 = 1 then b.one else b.zero)

let full_adder b a c cin =
  let axc = g_xor b a c in
  let s = g_xor b axc cin in
  let cout = g_or b (g_and b a c) (g_and b cin axc) in
  (s, cout)

let ripple_add b ~width x y ~cin =
  let out = Array.make width b.zero in
  let carry = ref cin in
  for i = 0 to width - 1 do
    let s, c = full_adder b (vec_bit b x i) (vec_bit b y i) !carry in
    out.(i) <- s;
    carry := c
  done;
  (out, !carry)

let bitwise b f ~width x y =
  Array.init width (fun i -> f b (vec_bit b x i) (vec_bit b y i))

let equality b x y =
  let width = max (Array.length x) (Array.length y) in
  let bits =
    List.init width (fun i -> g_not b (g_xor b (vec_bit b x i) (vec_bit b y i)))
  in
  match bits with
  | [] -> b.one
  | first :: rest -> List.fold_left (g_and b) first rest

(* Unsigned less-than via the borrow of x - y. *)
let less_than b x y =
  let width = max (Array.length x) (Array.length y) in
  let noty = Array.init width (fun i -> g_not b (vec_bit b y i)) in
  let _, carry = ripple_add b ~width x noty ~cin:b.one in
  g_not b carry

(* ------------------------------------------------------------------ *)
(* Expression lowering: an expression denotes a concatenation of nets. *)
(* ------------------------------------------------------------------ *)

let lookup_vector b name =
  match List.assoc_opt name b.b_outputs with
  | Some v -> v
  | None -> Error.failf Error.Analysis "Component <%s> not found." name

let atom_nets b = function
  | Expr.Const { number; width } ->
      let v = Number.value number in
      let w =
        match width with
        | Some w -> Number.value w
        | None -> Bits.width_needed v
      in
      const_vector b ~width:w (v land Bits.ones (min w Bits.word_bits))
  | Expr.Bitstring s ->
      let v = String.fold_left (fun acc c -> (acc * 2) + if c = '1' then 1 else 0) 0 s in
      const_vector b ~width:(String.length s) v
  | Expr.Ref { name; field } -> (
      let v = lookup_vector b name in
      match field with
      | Expr.Whole -> v
      | Expr.Bit f -> [| vec_bit b v (Number.value f) |]
      | Expr.Range (f, t) ->
          let lo = Number.value f and hi = Number.value t in
          Array.init (hi - lo + 1) (fun i -> vec_bit b v (lo + i)))

let expr_nets b e =
  (* Rightmost atom is least significant: concatenate LSB-first vectors. *)
  List.rev e
  |> List.map (atom_nets b)
  |> Array.concat

(* ------------------------------------------------------------------ *)
(* Components                                                          *)
(* ------------------------------------------------------------------ *)

let fit b ~width v = Array.init width (fun i -> vec_bit b v i)

let alu_nets b ~width (alu : Component.alu) =
  match Option.map Component.alu_function_of_code (Expr.const_value alu.fn) with
  | Some Component.Fn_zero | Some Component.Fn_unused ->
      Some (Array.make width b.zero)
  | Some Component.Fn_right -> Some (fit b ~width (expr_nets b alu.right))
  | Some Component.Fn_left -> Some (fit b ~width (expr_nets b alu.left))
  | Some Component.Fn_not ->
      let x = expr_nets b alu.left in
      Some (Array.init width (fun i -> g_not b (vec_bit b x i)))
  | Some Component.Fn_add ->
      let out, _ =
        ripple_add b ~width (expr_nets b alu.left) (expr_nets b alu.right) ~cin:b.zero
      in
      Some out
  | Some Component.Fn_sub ->
      let y = expr_nets b alu.right in
      let noty = Array.init width (fun i -> g_not b (vec_bit b y i)) in
      let out, _ = ripple_add b ~width (expr_nets b alu.left) noty ~cin:b.one in
      Some out
  | Some Component.Fn_and ->
      Some (bitwise b g_and ~width (expr_nets b alu.left) (expr_nets b alu.right))
  | Some Component.Fn_or ->
      Some (bitwise b g_or ~width (expr_nets b alu.left) (expr_nets b alu.right))
  | Some Component.Fn_xor ->
      Some (bitwise b g_xor ~width (expr_nets b alu.left) (expr_nets b alu.right))
  | Some Component.Fn_eq ->
      let e = equality b (expr_nets b alu.left) (expr_nets b alu.right) in
      Some (fit b ~width [| e |])
  | Some Component.Fn_lt ->
      let l = less_than b (expr_nets b alu.left) (expr_nets b alu.right) in
      Some (fit b ~width [| l |])
  | Some Component.Fn_mul | Some Component.Fn_shift_left | None -> None

let selector_nets b ~width (sel : Component.selector) =
  let select = expr_nets b sel.select in
  let cases = Array.map (fun case -> expr_nets b case) sel.cases in
  let n = Array.length cases in
  (* Per-bit multiplexor tree over just the select bits that distinguish the
     cases; any higher select bit forces zero (the RTL engines raise on an
     out-of-range select instead — such specs are outside gate-level
     equivalence). *)
  let needed =
    let rec go bits = if 1 lsl bits >= n then bits else go (bits + 1) in
    go 0
  in
  let rec mux_tree bit_index lo_case span level =
    if span = 1 then
      if lo_case < n then vec_bit b cases.(lo_case) bit_index else b.zero
    else
      let half = span / 2 in
      let lo = mux_tree bit_index lo_case half (level - 1) in
      let hi = mux_tree bit_index (lo_case + half) half (level - 1) in
      g_mux b (vec_bit b select (level - 1)) lo hi
  in
  let high_bits_clear =
    let rec go i acc =
      if i >= Array.length select then acc else go (i + 1) (g_or b acc select.(i))
    in
    g_not b (go needed b.zero)
  in
  Array.init width (fun i ->
      g_and b high_bits_clear (mux_tree i 0 (1 lsl needed) needed))

let memory_macro b ~io ~name (m : Component.memory) out =
  let addr = expr_nets b m.addr in
  let data = expr_nets b m.data in
  let op = expr_nets b m.op in
  let cells =
    match m.init with Some v -> Array.copy v | None -> Array.make m.cells 0
  in
  let macro =
    { m_kind = M_memory { mem_name = name; cells; addr; data; op; io }; m_out = out }
  in
  b.b_clocked <- macro :: b.b_clocked;
  macro

(* ------------------------------------------------------------------ *)
(* Linking                                                             *)
(* ------------------------------------------------------------------ *)

let of_analysis ?(io = Asim_sim.Io.null) (analysis : Analysis.t) =
  let spec = analysis.Analysis.spec in
  let env = Width.infer spec in
  let w_of (c : Component.t) =
    max 1 (min Bits.word_bits (Width.component_width env c))
  in
  (* Recompute widths directly per component so pass-1 register outputs can
     be allocated before their input cones exist. *)
  let b = new_builder () in
  (* Pass 1: allocate every memory's registered output nets. *)
  let memories = analysis.Analysis.memories in
  List.iter
    (fun (c : Component.t) ->
      let width = w_of c in
      let out = Array.init width (fun _ -> add b State) in
      b.b_outputs <- (c.name, out) :: b.b_outputs)
    memories;
  (* Pass 2: combinational components in dependency order. *)
  List.iter
    (fun (c : Component.t) ->
      b.gates_in_flight <- 0;
      let width = w_of c in
      match c.kind with
      | Component.Alu alu -> (
          match alu_nets b ~width alu with
          | Some out ->
              b.b_outputs <- (c.name, out) :: b.b_outputs;
              b.b_real <- (c.name, R_gates b.gates_in_flight) :: b.b_real
          | None ->
              (* behavioral fallback: computed function, multiply, shift *)
              let fn = expr_nets b alu.fn in
              let left = expr_nets b alu.left in
              let right = expr_nets b alu.right in
              let out = Array.init width (fun _ -> add b State) in
              let macro = { m_kind = M_alu { fn; left; right }; m_out = out } in
              Hashtbl.replace b.b_triggers out.(0) macro;
              b.b_outputs <- (c.name, out) :: b.b_outputs;
              b.b_real <- (c.name, R_macro "behavioral ALU") :: b.b_real)
      | Component.Selector sel ->
          let out = selector_nets b ~width sel in
          b.b_outputs <- (c.name, out) :: b.b_outputs;
          b.b_real <- (c.name, R_gates b.gates_in_flight) :: b.b_real
      | Component.Memory _ -> assert false)
    analysis.Analysis.order;
  (* Reject specs whose behaviour depends on sequential update order: all
     gate-level state clocks simultaneously. *)
  List.iter
    (function
      | Error.Memory_update_order { reader; written_before } ->
          Error.failf ~component:reader Error.Analysis
            "gate-level simulation clocks all state simultaneously; %s reading \
             %s (updated earlier) is not representable"
            reader written_before
      | _ -> ())
    analysis.Analysis.warnings;
  (* Pass 3: memory input cones and state elements, in declaration order. *)
  List.iter
    (fun (c : Component.t) ->
      b.gates_in_flight <- 0;
      match c.kind with
      | Component.Memory m ->
          let width = w_of c in
          let out = lookup_vector b c.name in
          if
            m.cells = 1 && m.init = None
            && (match Expr.const_value m.op with
               | Some v -> v land 3 <= 1
               | None -> Expr.width m.op <= 1)
          then begin
            (* An enabled register bank: q <- op.0 ? data : q.  Reuse the
               pre-allocated output nets as the flip-flop outputs. *)
            let data = expr_nets b m.data in
            let op = expr_nets b m.op in
            let en = vec_bit b op 0 in
            Array.iteri
              (fun i q ->
                b.b_dffs <- { d = g_mux b en q (vec_bit b data i); q } :: b.b_dffs)
              out;
            b.b_real <- (c.name, R_register width) :: b.b_real
          end
          else begin
            ignore width;
            ignore (memory_macro b ~io ~name:c.name m out);
            b.b_real <- (c.name, R_macro "RAM/ROM") :: b.b_real
          end
      | Component.Alu _ | Component.Selector _ -> ())
    memories;
  let memory_names = List.map (fun (c : Component.t) -> c.name) memories in
  {
    drivers = Array.sub b.drv 0 b.count;
    values = Array.make b.count false;
    dffs = Array.of_list (List.rev b.b_dffs);
    clocked_macros = Array.of_list (List.rev b.b_clocked);
    comb_triggers = b.b_triggers;
    outputs =
      List.rev_map
        (fun (name, nets) ->
          { o_name = name; o_nets = nets; o_memory = List.mem name memory_names;
            o_sample = 0 })
        b.b_outputs;
    realizations = List.rev b.b_real;
    cycle = 0;
  }

(* ------------------------------------------------------------------ *)
(* Simulation                                                          *)
(* ------------------------------------------------------------------ *)

let vector_value t nets =
  Array.to_list nets
  |> List.mapi (fun i n -> if t.values.(n) then 1 lsl i else 0)
  |> List.fold_left ( + ) 0

let set_vector t nets v =
  Array.iteri (fun i n -> t.values.(n) <- (v lsr i) land 1 = 1) nets

let run_alu_macro t macro fn left right =
  let code = vector_value t fn in
  let l = vector_value t left and r = vector_value t right in
  let v = Component.apply_alu_code code ~left:l ~right:r in
  set_vector t macro.m_out v

let step t =
  (* Phase 1: combinational evaluation in net order. *)
  let values = t.values in
  for id = 0 to Array.length t.drivers - 1 do
    match t.drivers.(id) with
    | Const c -> values.(id) <- c
    | And (a, c) -> values.(id) <- values.(a) && values.(c)
    | Or (a, c) -> values.(id) <- values.(a) || values.(c)
    | Xor (a, c) -> values.(id) <- values.(a) <> values.(c)
    | Not a -> values.(id) <- not values.(a)
    | State -> (
        match Hashtbl.find_opt t.comb_triggers id with
        | Some ({ m_kind = M_alu { fn; left; right }; _ } as macro) ->
            run_alu_macro t macro fn left right
        | Some { m_kind = M_memory _; _ } | None -> ())
  done;
  (* Sample combinational outputs before the clock: the RTL engines report
     the values computed during the cycle. *)
  List.iter
    (fun o -> if not o.o_memory then o.o_sample <- vector_value t o.o_nets)
    t.outputs;
  (* Phase 2: clock edge.  Sample every state element's inputs first so the
     whole machine latches simultaneously, then commit. *)
  let next = Array.map (fun { d; _ } -> values.(d)) t.dffs in
  let macro_inputs =
    Array.map
      (fun macro ->
        match macro.m_kind with
        | M_alu _ -> (0, 0, 0)
        | M_memory { addr; data; op; _ } ->
            (vector_value t addr, vector_value t data, vector_value t op))
      t.clocked_macros
  in
  Array.iteri (fun i { q; _ } -> values.(q) <- next.(i)) t.dffs;
  Array.iteri
    (fun mi macro ->
      match macro.m_kind with
      | M_alu _ -> ()
      | M_memory { mem_name; cells; io; _ } -> (
          let address, datav, opv = macro_inputs.(mi) in
          let check () =
            if address < 0 || address >= Array.length cells then
              Asim_sim.Machine.address_out_of_range ~component:mem_name
                ~cycle:t.cycle ~address ~cells:(Array.length cells)
          in
          match Component.memory_op_of_code opv with
          | Component.Op_read ->
              check ();
              set_vector t macro.m_out cells.(address)
          | Component.Op_write ->
              check ();
              cells.(address) <- datav;
              set_vector t macro.m_out datav
          | Component.Op_input ->
              set_vector t macro.m_out (io.Asim_sim.Io.input ~address)
          | Component.Op_output ->
              io.Asim_sim.Io.output ~address ~data:datav;
              set_vector t macro.m_out datav))
    t.clocked_macros;
  t.cycle <- t.cycle + 1

let run t ~cycles =
  for _ = 1 to cycles do
    step t
  done

let find_output t name =
  match List.find_opt (fun o -> String.equal o.o_name name) t.outputs with
  | Some o -> o
  | None -> Error.failf Error.Runtime "Component <%s> not found." name

let read t name =
  let o = find_output t name in
  if o.o_memory then vector_value t o.o_nets else o.o_sample

let width t name = Array.length (find_output t name).o_nets

let stats t =
  let gate_count =
    Array.fold_left
      (fun acc d -> match d with And _ | Or _ | Xor _ | Not _ -> acc + 1 | _ -> acc)
      0 t.drivers
  in
  {
    gate_count;
    dff_count = Array.length t.dffs;
    macro_count = Array.length t.clocked_macros + Hashtbl.length t.comb_triggers;
  }

let describe t =
  t.realizations
  |> List.map (fun (name, r) ->
         match r with
         | R_gates n -> Printf.sprintf "%-14s %4d gates" name n
         | R_register w -> Printf.sprintf "%-14s %4d flip-flops" name w
         | R_macro what -> Printf.sprintf "%-14s macro (%s)" name what)
  |> String.concat "\n"
