(** Component → hardware mapping (§5.3, Appendix F).

    "A hardware circuit can be easily built from a hardware specification in
    ASIM II. ... Enough information exists so that the engineer can choose
    appropriate components which perform the function of the specified
    component."  This module performs exactly that choice mechanically:
    every spec component becomes an instance backed by catalog parts sized
    by the inferred output width; the result is a bill of materials and a
    wiring list, i.e. the content of the thesis's Appendix F figure.

    Like the thesis, this is deliberately *not* an optimizing synthesizer
    ("it should be noted that this is not an optimum circuit"). *)

open Asim_core

type instance = {
  component : string;  (** spec component name *)
  width : int;  (** inferred output width in bits *)
  parts : (Parts.t * int) list;  (** catalog parts and counts *)
  role : string;  (** human description, e.g. "register", "adder" *)
}

type wire = {
  from_component : string;
  bits : string;  (** field description: ["[3..4]"] or ["[all]"] *)
  to_component : string;
  to_port : string;  (** e.g. ["left"], ["select"], ["case 3"] *)
}

type t = {
  instances : instance list;
  wires : wire list;
  bom : (Parts.t * int) list;  (** aggregated, catalog order *)
}

val synthesize : Spec.t -> t

val bom_to_string : t -> string
(** Appendix F style parts list: one part per line with its count. *)

val wiring_to_string : t -> string

val instances_to_string : t -> string

val to_dot : t -> string
(** GraphViz block diagram: one box per component, one edge per wire. *)
