lib/netlist/synth.mli: Asim_core Parts Spec
