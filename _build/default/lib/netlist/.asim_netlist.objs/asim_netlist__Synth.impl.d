lib/netlist/synth.ml: Array Asim_analysis Asim_core Buffer Component Expr List Number Option Parts Printf Spec String
