lib/netlist/parts.mli:
