lib/netlist/parts.ml: Printf Stdlib
