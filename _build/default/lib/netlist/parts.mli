(** The hardware catalog of Appendix F.

    "Each of the components in the specification has a hardware component
    represented in the diagram" (§5.3).  These are the MSI parts the thesis
    maps its example machine onto; the synthesizer picks from the same
    shelf. *)

type t =
  | Ram of { words : int; bits : int }  (** e.g. 2K x 8 bit RAM *)
  | Rom of { words : int; bits : int }
  | Dual_d_flip_flop
  | Quad_d_flip_flop
  | Hex_d_flip_flop
  | Adder_4bit
  | Comparator_4bit
  | Alu_4bit
  | Mux_8to1
  | Dual_mux_4to1
  | Quad_mux_2to1
  | Quad_and
  | Quad_or
  | Quad_xor
  | Hex_inverter

val name : t -> string
(** Catalog description, e.g. ["2K x 8 bit RAM"]. *)

val compare : t -> t -> int
(** Total order for aggregation. *)
