type t =
  | Ram of { words : int; bits : int }
  | Rom of { words : int; bits : int }
  | Dual_d_flip_flop
  | Quad_d_flip_flop
  | Hex_d_flip_flop
  | Adder_4bit
  | Comparator_4bit
  | Alu_4bit
  | Mux_8to1
  | Dual_mux_4to1
  | Quad_mux_2to1
  | Quad_and
  | Quad_or
  | Quad_xor
  | Hex_inverter

let size_name words =
  if words >= 1024 && words mod 1024 = 0 then Printf.sprintf "%dK" (words / 1024)
  else string_of_int words

let name = function
  | Ram { words; bits } -> Printf.sprintf "%s x %d bit RAM" (size_name words) bits
  | Rom { words; bits } -> Printf.sprintf "%s x %d bit ROM" (size_name words) bits
  | Dual_d_flip_flop -> "dual D flip flop"
  | Quad_d_flip_flop -> "quad D flip flop"
  | Hex_d_flip_flop -> "hex D flip flop"
  | Adder_4bit -> "4 bit adder"
  | Comparator_4bit -> "4 bit comparator"
  | Alu_4bit -> "4 bit alu"
  | Mux_8to1 -> "8 to 1 multiplexor"
  | Dual_mux_4to1 -> "dual 4 to 1 multiplexor"
  | Quad_mux_2to1 -> "quad 2 to 1 multiplexor"
  | Quad_and -> "quad AND"
  | Quad_or -> "quad OR"
  | Quad_xor -> "quad XOR"
  | Hex_inverter -> "hex inverter"

let compare = Stdlib.compare
