open Asim_core
module Width = Asim_analysis.Width

type instance = {
  component : string;
  width : int;
  parts : (Parts.t * int) list;
  role : string;
}

type wire = {
  from_component : string;
  bits : string;
  to_component : string;
  to_port : string;
}

type t = {
  instances : instance list;
  wires : wire list;
  bom : (Parts.t * int) list;
}

let ceil_div a b = (a + b - 1) / b

(* Registers are built from D flip-flop packages, largest first. *)
let flip_flops width =
  let hex = width / 6 in
  let rem = width mod 6 in
  let quad = rem / 4 in
  let rem = rem mod 4 in
  let dual = ceil_div rem 2 in
  List.filter
    (fun (_, n) -> n > 0)
    [
      (Parts.Hex_d_flip_flop, hex);
      (Parts.Quad_d_flip_flop, quad);
      (Parts.Dual_d_flip_flop, dual);
    ]

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let ram_parts ~rom ~cells width =
  let words = max 16 (next_pow2 cells) in
  let chips = ceil_div width 8 in
  if rom then [ (Parts.Rom { words; bits = 8 }, chips) ]
  else [ (Parts.Ram { words; bits = 8 }, chips) ]

let mux_parts ~cases width =
  if cases <= 1 then []
  else if cases <= 2 then [ (Parts.Quad_mux_2to1, ceil_div width 4) ]
  else if cases <= 4 then [ (Parts.Dual_mux_4to1, ceil_div width 2) ]
  else
    (* First level: one 8-to-1 per bit per group of 8 inputs; further levels
       recombine group outputs.  The thesis machine never needs more than two
       levels (64 cases). *)
    let groups = ceil_div cases 8 in
    let first = width * groups in
    let second =
      if groups <= 1 then []
      else if groups <= 2 then [ (Parts.Quad_mux_2to1, ceil_div width 4) ]
      else if groups <= 4 then [ (Parts.Dual_mux_4to1, ceil_div width 2) ]
      else [ (Parts.Mux_8to1, width) ]
    in
    (Parts.Mux_8to1, first) :: second

let const_function (alu : Component.alu) =
  Option.map Component.alu_function_of_code (Expr.const_value alu.fn)

let alu_parts env (alu : Component.alu) width =
  match const_function alu with
  | Some Component.Fn_add | Some Component.Fn_sub ->
      ([ (Parts.Adder_4bit, ceil_div width 4) ], "adder")
  | Some Component.Fn_eq | Some Component.Fn_lt ->
      let w =
        max (Width.expr_width env alu.left) (Width.expr_width env alu.right)
      in
      ([ (Parts.Comparator_4bit, ceil_div w 4) ], "comparator")
  | Some Component.Fn_and -> ([ (Parts.Quad_and, ceil_div width 4) ], "AND gates")
  | Some Component.Fn_or -> ([ (Parts.Quad_or, ceil_div width 4) ], "OR gates")
  | Some Component.Fn_xor -> ([ (Parts.Quad_xor, ceil_div width 4) ], "XOR gates")
  | Some Component.Fn_not -> ([ (Parts.Hex_inverter, ceil_div width 6) ], "inverters")
  | Some Component.Fn_left | Some Component.Fn_right ->
      ([], "wiring (pass-through)")
  | Some Component.Fn_zero | Some Component.Fn_unused -> ([], "grounded output")
  | Some Component.Fn_shift_left | Some Component.Fn_mul | None ->
      ([ (Parts.Alu_4bit, ceil_div width 4) ], "general ALU")

let instance_of env (c : Component.t) =
  let width = Width.component_width env c in
  match c.kind with
  | Component.Alu alu ->
      let parts, role = alu_parts env alu width in
      { component = c.name; width; parts; role }
  | Component.Selector { cases; _ } ->
      {
        component = c.name;
        width;
        parts = mux_parts ~cases:(Array.length cases) width;
        role = "data selector/multiplexor";
      }
  | Component.Memory { cells; init; op; _ } ->
      if cells = 1 then
        { component = c.name; width; parts = flip_flops width; role = "register" }
      else
        let can_write =
          match Expr.const_value op with
          | Some v -> v land 3 = 1
          | None -> true
        in
        let rom = init <> None && not can_write in
        {
          component = c.name;
          width;
          parts = ram_parts ~rom ~cells width;
          role = (if rom then "ROM" else "RAM");
        }

let field_bits = function
  | Expr.Whole -> "[all]"
  | Expr.Bit f -> Printf.sprintf "[%d]" (Number.value f)
  | Expr.Range (f, t) -> Printf.sprintf "[%d..%d]" (Number.value f) (Number.value t)

let wires_of (c : Component.t) =
  let of_expr port e =
    List.filter_map
      (function
        | Expr.Const _ | Expr.Bitstring _ -> None
        | Expr.Ref { name; field } ->
            Some
              {
                from_component = name;
                bits = field_bits field;
                to_component = c.name;
                to_port = port;
              })
      e
  in
  match c.kind with
  | Component.Alu { fn; left; right } ->
      of_expr "function" fn @ of_expr "left" left @ of_expr "right" right
  | Component.Selector { select; cases } ->
      of_expr "select" select
      @ List.concat
          (Array.to_list
             (Array.mapi (fun i case -> of_expr (Printf.sprintf "case %d" i) case) cases))
  | Component.Memory { addr; data; op; _ } ->
      of_expr "address" addr @ of_expr "data" data @ of_expr "operation" op

let aggregate instances =
  let add acc (part, n) =
    let current = try List.assoc part acc with Not_found -> 0 in
    (part, current + n) :: List.remove_assoc part acc
  in
  List.fold_left (fun acc inst -> List.fold_left add acc inst.parts) [] instances
  |> List.sort (fun (a, _) (b, _) -> Parts.compare a b)

let synthesize (spec : Spec.t) =
  let env = Width.infer spec in
  let instances = List.map (instance_of env) spec.components in
  let wires = List.concat_map wires_of spec.components in
  { instances; wires; bom = aggregate instances }

let bom_to_string t =
  t.bom
  |> List.map (fun (part, n) -> Printf.sprintf "%3d  %s" n (Parts.name part))
  |> String.concat "\n"

let wiring_to_string t =
  t.wires
  |> List.map (fun w ->
         Printf.sprintf "%-12s %-10s -> %s.%s" w.from_component w.bits w.to_component
           w.to_port)
  |> String.concat "\n"

let instances_to_string t =
  t.instances
  |> List.map (fun i ->
         let parts =
           match i.parts with
           | [] -> "(no parts: " ^ i.role ^ ")"
           | parts ->
               parts
               |> List.map (fun (p, n) -> Printf.sprintf "%dx %s" n (Parts.name p))
               |> String.concat ", "
         in
         Printf.sprintf "%-12s %2d bits  %-24s %s" i.component i.width i.role parts)
  |> String.concat "\n"

let to_dot t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph asim {\n  rankdir=LR;\n  node [shape=box];\n";
  List.iter
    (fun i ->
      Buffer.add_string buf
        (Printf.sprintf "  %s [label=\"%s\\n%s (%d bits)\"];\n" i.component
           i.component i.role i.width))
    t.instances;
  List.iter
    (fun w ->
      Buffer.add_string buf
        (Printf.sprintf "  %s -> %s [label=\"%s %s\"];\n" w.from_component
           w.to_component w.bits w.to_port))
    t.wires;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
