lib/compile/compile.ml: Array Asim_analysis Asim_core Asim_sim Bits Component Error Expr Fault Fun Hashtbl Io List Machine Number Spec Stats String Trace
