lib/compile/compile.mli: Asim_analysis Asim_core Asim_sim
