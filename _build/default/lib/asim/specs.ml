let counter =
  "# quickstart: an 8-step traced counter\n\
   = 8\n\
   count* inc .\n\
   A inc 4 count 1\n\
   M count 0 inc 1 1\n\
   .\n"

let traffic_light =
  "# traffic light: light 0=green 1=red, timer reloads on expiry\n\
   = 40\n\
   light* timer* nextlight nexttimer expired dec reload .\n\
   A expired 12 timer 0\n\
   A nextlight 10 light expired\n\
   A dec 5 timer 1\n\
   S reload light 5 3\n\
   S nexttimer expired dec reload\n\
   M timer 0 nexttimer 1 1\n\
   M light 0 nextlight 1 1\n\
   .\n"

let gray_code =
  "# 4-bit Gray code generator: count XOR (count >> 1)\n\
   = 16\n\
   count gray* inc shifted .\n\
   A inc 4 count 1\n\
   A shifted 1 0 count.1.4\n\
   A gray 10 count.0.3 shifted\n\
   M count 0 inc 1 1\n\
   .\n"

let divider =
  "# divide-by-8 chain: three toggle flip-flops\n\
   = 16\n\
   d0* d1* d2* n0 n1 n2 c2 .\n\
   A n0 10 d0 1\n\
   A n1 10 d1 d0\n\
   A c2 8 d0 d1\n\
   A n2 10 d2 c2\n\
   M d0 0 n0 1 1\n\
   M d1 0 n1 1 1\n\
   M d2 0 n2 1 1\n\
   .\n"

let multiplier =
  "# shift-and-add multiplier: acc accumulates 11 * 13 = 143 by cycle 5\n\
   = 16\n\
   acc* mcand* mplier* one started addout newacc gated shl shr newmcand newmplier .\n\
   A one 1 0 1\n\
   A addout 4 acc mcand\n\
   S newacc mplier.0 acc addout\n\
   S gated started 0 newacc\n\
   A shl 6 mcand 1\n\
   A shr 1 0 mplier.1.16\n\
   S newmcand started 11 shl\n\
   S newmplier started 13 shr\n\
   M started 0 one 1 1\n\
   M acc 0 gated 1 1\n\
   M mcand 0 newmcand 1 1\n\
   M mplier 0 newmplier 1 1\n\
   .\n"

let seven_segment =
  "# 7-segment decoder: a pure selector ROM driven by a hex counter\n\
   = 16\n\
   digit* segments* inc .\n\
   A inc 4 digit 1\n\
   S segments digit.0.3 #0111111 #0000110 #1011011 #1001111 #1100110 #1101101\n\
   #1111101 #0000111 #1111111 #1101111 #1110111 #1111100 #0111001 #1011110\n\
   #1111001 #1110001\n\
   M digit 0 inc 1 1\n\
   .\n"

let pwm =
  "# pulse-width modulator: out high while the 4-bit phase is below duty\n\
   = 32\n\
   phase out* inc duty .\n\
   A inc 4 phase 1\n\
   A duty 1 0 5\n\
   A out 13 phase.0.3 duty\n\
   M phase 0 inc 1 1\n\
   .\n"

let shifter =
  "# serial transmitter: an 8-bit pattern rotates one bit per cycle\n\
   = 20\n\
   reg bit* one started rot next .\n\
   A one 1 0 1\n\
   A rot 1 0 reg.0,reg.1.7\n\
   S next started 172 rot\n\
   A bit 1 0 reg.0\n\
   M started 0 one 1 1\n\
   M reg 0 next 1 1\n\
   .\n"

let divider_modular =
  "# modular divider: one T flip-flop module, three instances (s5.4 extension)\n\
   = 16\n\
   one d0q* d1q* d2q* .\n\
   A one 1 0 1\n\
   B tflip en .\n\
   A n 10 q en\n\
   A carry 8 q en\n\
   M q 0 n 1 1\n\
   E\n\
   U d0 tflip one\n\
   U d1 tflip d0carry\n\
   U d2 tflip d1carry\n\
   .\n"

let stack_machine_sieve =
  Asim_core.Pretty.spec
    (Asim_stackm.Microcode.spec ~cycles:Asim_stackm.Programs.sieve_cycles
       ~program:Asim_stackm.Programs.sieve ())

let tiny_computer =
  Asim_core.Pretty.spec
    (Asim_tinyc.Machine.spec
       ~traced:[ "pc"; "ac"; "borrow" ]
       ~cycles:Asim_tinyc.Machine.demo_cycles
       ~program:Asim_tinyc.Machine.demo_image ())

let all =
  [
    ("counter", counter);
    ("traffic-light", traffic_light);
    ("gray-code", gray_code);
    ("divider", divider);
    ("divider-modular", divider_modular);
    ("multiplier", multiplier);
    ("seven-segment", seven_segment);
    ("pwm", pwm);
    ("shifter", shifter);
    ("stack-machine-sieve", stack_machine_sieve);
    ("tiny-computer", tiny_computer);
  ]
