(** Embedded example specifications, usable from the CLI ([asim example])
    and the documentation. *)

val counter : string
(** Quickstart: a traced 8-step counter. *)

val traffic_light : string
(** A two-phase traffic-light controller with a programmable green time —
    selectors as next-state logic. *)

val gray_code : string
(** 4-bit Gray-code generator: XOR of a counter with its own shift. *)

val divider : string
(** Clock divider chain built from three 1-bit registers. *)

val multiplier : string
(** Shift-and-add multiplier: classic RTL dataflow with a conditional
    accumulate (selector), a shift-left ALU (function 6) and a shift-right
    bit-field. Computes 11 × 13 = 143 in its registers. *)

val seven_segment : string
(** Hex digit → 7-segment pattern: a selector used as a pure lookup ROM. *)

val pwm : string
(** Pulse-width modulator: output high while the 4-bit phase counter is
    below the duty threshold (the [<] ALU as a comparator). *)

val shifter : string
(** Serial transmitter: an 8-bit pattern (0b10101100) loaded on the first
    cycle, then rotated one bit per cycle; [bit] is the line output. *)

val divider_modular : string
(** The same divider built by instantiating a T flip-flop module three
    times — the §5.4 modularity extension ([B]/[E]/[U] forms). *)

val stack_machine_sieve : string
(** The Appendix D machine with the verbatim Sieve program ROM, rendered to
    canonical source (large). *)

val tiny_computer : string
(** The Appendix F machine with the demonstration program. *)

val all : (string * string) list
(** Name → source, for the CLI. *)
