lib/asim/asim.mli: Asim_analysis Asim_compile Asim_core Asim_interp Asim_sim Asim_syntax Specs
