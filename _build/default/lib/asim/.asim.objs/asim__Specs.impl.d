lib/asim/specs.ml: Asim_core Asim_stackm Asim_tinyc
