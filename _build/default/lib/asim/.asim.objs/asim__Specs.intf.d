lib/asim/specs.mli:
