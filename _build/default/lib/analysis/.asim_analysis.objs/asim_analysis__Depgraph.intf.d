lib/analysis/depgraph.mli: Asim_core
