lib/analysis/width.ml: Array Asim_core Bits Component Expr List Number Spec
