lib/analysis/analysis.mli: Asim_core Component Error Spec
