lib/analysis/depgraph.ml: Asim_core Component Error Expr Hashtbl List Spec
