lib/analysis/width.mli: Asim_core Component Expr Spec
