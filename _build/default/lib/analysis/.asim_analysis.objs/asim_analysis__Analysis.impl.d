lib/analysis/analysis.ml: Array Asim_core Bits Component Depgraph Error Expr List Printf Spec String Width
