(** Whole-specification analysis: the front half of both simulators.

    [analyze] performs everything ASIM II's [readit]/[checkdcl]/[orderit]
    phases did — cross-reference checks, dependency ordering, circularity
    detection — plus the lints this reimplementation adds. *)

open Asim_core

type trace_condition =
  | Trace_never
  | Trace_always  (** operation is constant and has the trace bit pattern *)
  | Trace_runtime
      (** operation is an expression wide enough to carry trace bits; the
          check must be emitted/evaluated at run time *)

type t = {
  spec : Spec.t;
  order : Component.t list;
      (** ALUs and selectors in dependency evaluation order *)
  memories : Component.t list;  (** memories in declaration order *)
  warnings : Error.warning list;
}

val analyze : Spec.t -> t
(** Validate, resolve and order a spec.  Raises {!Error.Error} on undefined
    component references, structural errors or circular dependencies.
    Warnings (declared-but-not-defined, defined-but-not-declared, memory
    update-order hazards) are collected, not raised. *)

val write_trace_condition : Component.memory -> trace_condition
(** When must a "Write to ..." trace line be printed?  Constant operations
    decide statically ([op land 5 = 5]); non-constant operations at least
    3 bits wide require a runtime check.  (The original tested only
    [op land 4] for constants, printing spurious lines for read-with-trace
    operations; we require the full [land 5 = 5] pattern.) *)

val read_trace_condition : Component.memory -> trace_condition
(** Same for "Read from ..." lines: [op land 9 = 8], runtime check when the
    operation is at least 4 bits wide. *)

(** Static lints: places where the spec {e may} hit the documented runtime
    errors.  Reported separately from {!analyze}'s warnings because they are
    frequently intentional (Appendix A: "It is up to the user to provide
    enough values for all possible address values in a selector"). *)
type lint =
  | Selector_possible_overrun of { selector : string; cases : int; select_width : int }
      (** the select expression can take values beyond the case list *)
  | Address_possible_overrun of { memory : string; cells : int; addr_width : int }
      (** the address expression can reach beyond the declared cells — the
          stack machine's own program ROM has exactly this property, which
          is why its run is bounded at 5545 cycles *)

val lints : t -> lint list
(** Widths come from {!Width.infer}, so a 1-bit register feeding a 2-way
    selector is (correctly) not flagged. *)

val lint_to_string : lint -> string

val memory_output_used : t -> string -> bool
(** Is the memory's registered output ever read — by any component
    expression or by the per-cycle trace list?  When it is not, a code
    generator need not maintain the temporary at all: §5.4's "heuristics to
    determine which memories do not need temporary variables in which to
    store results". *)

val memory_io_possible : Component.memory -> bool
(** False when the operation can never select input or output — a constant
    with [land 3 < 2], or an expression too narrow to carry bit 1.
    Backends may then skip the I/O plumbing. *)
