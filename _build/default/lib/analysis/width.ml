open Asim_core

type env = (string * int) list

let lookup env name =
  match List.assoc_opt name env with Some w -> w | None -> Bits.word_bits

let cap w = max 1 (min Bits.word_bits w)

let atom_width env atom =
  match Expr.atom_width atom with
  | Some w -> max w 0
  | None -> (
      match atom with
      | Expr.Ref { name; _ } -> lookup env name
      | Expr.Const { number; _ } -> Bits.width_needed (Number.value number)
      | Expr.Bitstring _ -> assert false)

let expr_width env atoms =
  cap (List.fold_left (fun acc atom -> acc + atom_width env atom) 0 atoms)

let alu_width env ({ fn; left; right } : Component.alu) =
  let l = expr_width env left and r = expr_width env right in
  match Expr.const_value fn with
  | None ->
      (* A runtime-selected function can be NOT (mask - left), which fills
         the whole word regardless of operand widths. *)
      Bits.word_bits
  | Some code -> (
      match Component.alu_function_of_code code with
      | Component.Fn_zero | Component.Fn_unused -> 1
      | Component.Fn_right -> r
      | Component.Fn_left -> l
      | Component.Fn_not -> Bits.word_bits
      | Component.Fn_add -> cap (max l r + 1)
      | Component.Fn_sub -> Bits.word_bits (* may go negative *)
      | Component.Fn_shift_left -> Bits.word_bits
      | Component.Fn_mul -> cap (l + r)
      | Component.Fn_and -> min l r
      | Component.Fn_or | Component.Fn_xor -> max l r
      | Component.Fn_eq | Component.Fn_lt -> 1)

let component_width env (c : Component.t) =
  match c.kind with
  | Component.Alu alu -> alu_width env alu
  | Component.Selector { cases; _ } ->
      Array.fold_left (fun acc case -> max acc (expr_width env case)) 1 cases
  | Component.Memory { data; init; op; _ } ->
      (* A memory that can perform input latches values of any width. *)
      let input_possible =
        match Expr.const_value op with
        | Some v -> v land 3 = 2
        | None -> expr_width env op >= 2
      in
      if input_possible then Bits.word_bits
      else
      let from_init =
        match init with
        | None -> 1
        | Some values ->
            Array.fold_left (fun acc v -> max acc (Bits.width_needed (abs v))) 1 values
      in
      max (expr_width env data) from_init

let infer (spec : Spec.t) =
  let components = spec.components in
  let step env =
    List.map (fun (c : Component.t) -> (c.name, component_width env c)) components
  in
  (* Start from the narrowest estimate and widen until stable; widths are
     monotone in the environment and bounded by the word size, so at most
     [word_bits * n] steps are needed (we allow a few more for safety). *)
  let initial = List.map (fun (c : Component.t) -> (c.name, 1)) components in
  let rec go env fuel =
    let env' = step env in
    if env' = env || fuel = 0 then env' else go env' (fuel - 1)
  in
  go initial (Bits.word_bits * List.length components + 8)
