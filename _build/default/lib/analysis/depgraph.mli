(** Dependency ordering of combinational components.

    ASIM II avoids simulating true parallelism by sorting ALUs and selectors
    so that every component is evaluated after the components whose outputs
    it reads (§4.3).  Memories are not sorted: their outputs come from
    one-cycle-delayed temporaries, so reading a memory imposes no ordering
    constraint. *)

val order : Asim_core.Spec.t -> Asim_core.Component.t list
(** Combinational components (ALUs and selectors only) in an evaluation
    order that respects data dependencies; ties broken by source order, so
    the result is deterministic.  Raises {!Asim_core.Error.Error} with the
    paper's "Circular dependency with ... and/or ..." message when the
    combinational graph is cyclic. *)

val dependencies : Asim_core.Spec.t -> Asim_core.Component.t -> string list
(** Names of combinational components whose outputs the given component's
    own combinational evaluation reads.  (Empty for memories.) *)
