(** Output-width inference.

    Estimates how many bits each component's output can occupy.  Expression
    fields give exact widths; filling references take the width of the
    referenced component, resolved by a monotone fixpoint (bounded by the
    31-bit word).  ALU widths follow the function's arithmetic (e.g. add =
    max + 1, compare = 1).  Used by the netlist backend to size flip-flops,
    adders and multiplexors, and by [asim check] diagnostics. *)

open Asim_core

type env = (string * int) list
(** Component name → inferred output width in bits. *)

val infer : Spec.t -> env
(** Fixpoint width inference over the whole spec.  Every declared component
    gets an entry; unknown constructs default to the full word. *)

val component_width : env -> Component.t -> int
(** Width of one component's output under the environment. *)

val expr_width : env -> Expr.t -> int
(** Width of an expression, resolving filling references through [env]. *)
