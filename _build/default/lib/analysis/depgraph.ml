open Asim_core

let combinational_names spec =
  List.filter_map
    (fun (c : Component.t) -> if Component.is_memory c then None else Some c.name)
    spec.Spec.components

let dependencies spec (c : Component.t) =
  let comb = combinational_names spec in
  let inputs = Component.combinational_inputs c in
  let referenced = List.concat_map Expr.names inputs in
  let seen = Hashtbl.create 8 in
  List.filter
    (fun name ->
      if Hashtbl.mem seen name then false
      else begin
        Hashtbl.add seen name ();
        List.mem name comb
      end)
    referenced

let order spec =
  let comb =
    List.filter (fun c -> not (Component.is_memory c)) spec.Spec.components
  in
  let deps = List.map (fun c -> (c, dependencies spec c)) comb in
  (* Kahn's algorithm, always taking the earliest-declared ready component so
     the order is deterministic and close to the source. *)
  let rec go placed_names placed pending =
    if pending = [] then List.rev placed
    else
      let ready, blocked =
        List.partition
          (fun (_, ds) -> List.for_all (fun d -> List.mem d placed_names) ds)
          pending
      in
      match ready with
      | [] ->
          (* Every remaining component is on or behind a cycle; report the
             first two for a diagnostic in the paper's style. *)
          let names = List.map (fun ((c : Component.t), _) -> c.name) blocked in
          let a = List.nth names 0 in
          let b = if List.length names > 1 then List.nth names 1 else a in
          Error.failf ~component:a Error.Analysis
            "Circular dependency with %s and/or %s." a b
      | _ ->
          let newly = List.map (fun ((c : Component.t), _) -> c.name) ready in
          go
            (List.rev_append newly placed_names)
            (List.rev_append (List.map fst ready) placed)
            blocked
  in
  go [] [] deps
