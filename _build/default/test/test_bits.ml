(* Unit and property tests for the 31-bit word utilities. *)

open Asim_core

let check = Alcotest.(check int)

let test_constants () =
  check "word bits" 31 Bits.word_bits;
  check "mask" 2147483647 Bits.mask

let test_ones () =
  check "ones 0" 0 (Bits.ones 0);
  check "ones 1" 1 (Bits.ones 1);
  check "ones 4" 15 (Bits.ones 4);
  check "ones 31" Bits.mask (Bits.ones 31);
  Alcotest.check_raises "ones 32" (Invalid_argument "Bits.ones") (fun () ->
      ignore (Bits.ones 32));
  Alcotest.check_raises "ones -1" (Invalid_argument "Bits.ones") (fun () ->
      ignore (Bits.ones (-1)))

let test_bit () =
  check "bit 0 of 5" 1 (Bits.bit 5 0);
  check "bit 1 of 5" 0 (Bits.bit 5 1);
  check "bit 2 of 5" 1 (Bits.bit 5 2);
  check "bit 30 of mask" 1 (Bits.bit Bits.mask 30);
  (* Two's-complement view of negatives, as in the original Pascal. *)
  check "bit 0 of -1" 1 (Bits.bit (-1) 0);
  check "bit 12 of -1" 1 (Bits.bit (-1) 12)

let test_extract () =
  check "extract lone bit" 1 (Bits.extract 8 ~lo:3 ~hi:3);
  check "extract low nibble" 11 (Bits.extract 0xAB ~lo:0 ~hi:3);
  check "extract high nibble" 10 (Bits.extract 0xAB ~lo:4 ~hi:7);
  check "extract of negative" 4091 (Bits.extract (-5) ~lo:0 ~hi:11);
  Alcotest.check_raises "inverted range" (Invalid_argument "Bits.extract") (fun () ->
      ignore (Bits.extract 0 ~lo:4 ~hi:2))

let test_field_mask () =
  check "bit 0" 1 (Bits.field_mask ~lo:0 ~hi:0);
  check "bits 3..4" 24 (Bits.field_mask ~lo:3 ~hi:4);
  check "bits 0..11" 4095 (Bits.field_mask ~lo:0 ~hi:11);
  check "bit 30" (1 lsl 30) (Bits.field_mask ~lo:30 ~hi:30)

let test_shift_left_masked () =
  check "1 << 4" 16 (Bits.shift_left_masked 1 4);
  check "n = 0 passes through" 7 (Bits.shift_left_masked 7 0);
  check "negative count passes through" 7 (Bits.shift_left_masked 7 (-2));
  check "zero stays zero" 0 (Bits.shift_left_masked 0 10);
  (* Bits shifted past bit 30 fall off. *)
  check "overflow drops high bits" 0 (Bits.shift_left_masked (1 lsl 30) 1);
  check "partial overflow" ((1 lsl 30) land Bits.mask) (Bits.shift_left_masked 3 30)

let test_width_needed () =
  check "0 needs 1" 1 (Bits.width_needed 0);
  check "1 needs 1" 1 (Bits.width_needed 1);
  check "2 needs 2" 2 (Bits.width_needed 2);
  check "255 needs 8" 8 (Bits.width_needed 255);
  check "256 needs 9" 9 (Bits.width_needed 256);
  check "negative takes the word" 31 (Bits.width_needed (-1))

let test_power_of_two () =
  Alcotest.(check bool) "1" true (Bits.is_power_of_two 1);
  Alcotest.(check bool) "4096" true (Bits.is_power_of_two 4096);
  Alcotest.(check bool) "0" false (Bits.is_power_of_two 0);
  Alcotest.(check bool) "6" false (Bits.is_power_of_two 6);
  Alcotest.(check bool) "negative" false (Bits.is_power_of_two (-4))

let test_binary_string () =
  Alcotest.(check string) "5 in 4 bits" "0101" (Bits.to_binary_string ~width:4 5);
  Alcotest.(check string) "1 bit" "1" (Bits.to_binary_string ~width:1 1);
  Alcotest.(check string) "truncates to width" "0" (Bits.to_binary_string ~width:1 2)

(* Properties *)

let prop_extract_matches_shift =
  QCheck.Test.make ~name:"extract = shift+mask" ~count:500
    QCheck.(triple (int_bound Bits.mask) (int_bound 30) (int_bound 30))
    (fun (v, a, b) ->
      let lo = min a b and hi = max a b in
      Bits.extract v ~lo ~hi = (v lsr lo) land Bits.ones (hi - lo + 1))

let prop_field_mask_popcount =
  QCheck.Test.make ~name:"field mask covers hi-lo+1 bits" ~count:500
    QCheck.(pair (int_bound 30) (int_bound 30))
    (fun (a, b) ->
      let lo = min a b and hi = max a b in
      let rec popcount v = if v = 0 then 0 else (v land 1) + popcount (v lsr 1) in
      popcount (Bits.field_mask ~lo ~hi) = hi - lo + 1)

let prop_shift_matches_lsl_when_in_range =
  QCheck.Test.make ~name:"shift_left_masked = lsl (no overflow)" ~count:500
    QCheck.(pair (int_bound 0xFFFF) (int_bound 14))
    (fun (v, n) -> Bits.shift_left_masked v n = (v lsl n) land Bits.mask)

let prop_width_needed_tight =
  QCheck.Test.make ~name:"width_needed is tight" ~count:500
    QCheck.(int_bound Bits.mask)
    (fun v ->
      let w = Bits.width_needed v in
      v <= Bits.ones w && (w = 1 || v > Bits.ones (w - 1)))

let () =
  Alcotest.run "bits"
    [
      ( "unit",
        [
          Alcotest.test_case "constants" `Quick test_constants;
          Alcotest.test_case "ones" `Quick test_ones;
          Alcotest.test_case "bit" `Quick test_bit;
          Alcotest.test_case "extract" `Quick test_extract;
          Alcotest.test_case "field_mask" `Quick test_field_mask;
          Alcotest.test_case "shift_left_masked" `Quick test_shift_left_masked;
          Alcotest.test_case "width_needed" `Quick test_width_needed;
          Alcotest.test_case "is_power_of_two" `Quick test_power_of_two;
          Alcotest.test_case "to_binary_string" `Quick test_binary_string;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_extract_matches_shift;
            prop_field_mask_popcount;
            prop_shift_matches_lsl_when_in_range;
            prop_width_needed_tight;
          ] );
    ]
