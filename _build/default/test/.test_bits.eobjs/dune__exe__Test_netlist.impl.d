test/test_netlist.ml: Alcotest Analysis Asim Asim_netlist Asim_stackm Asim_tinyc List Specs String
