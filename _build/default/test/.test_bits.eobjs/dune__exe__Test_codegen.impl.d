test/test_codegen.ml: Alcotest Analysis Asim Asim_codegen Asim_stackm List Option Parser Specs String
