test/test_bits.ml: Alcotest Asim_core Bits List QCheck QCheck_alcotest
