test/test_golden.ml: Alcotest Asim Asim_codegen Filename Specs String
