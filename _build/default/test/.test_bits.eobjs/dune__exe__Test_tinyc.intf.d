test/test_tinyc.mli:
