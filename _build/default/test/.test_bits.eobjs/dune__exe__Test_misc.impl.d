test/test_misc.ml: Alcotest Asim Asim_netlist Asim_sim Asim_stackm Asim_syntax Buffer Component Depgraph Error Expr List Machine Macro Parser Pretty Printf Spec Specs String Vcd
