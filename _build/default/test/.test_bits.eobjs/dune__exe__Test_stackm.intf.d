test/test_stackm.mli:
