test/test_tinyc.ml: Alcotest Array Asim Asim_tinyc List Printf
