test/test_gates.ml: Alcotest Analysis Asim Asim_gates Asim_stackm Asim_tinyc Bits Compile Component Error Io List Machine Spec Specs String
