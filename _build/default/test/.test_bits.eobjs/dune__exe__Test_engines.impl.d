test/test_engines.ml: Alcotest Asim Asim_core Buffer Compile Error Fault Interp Io List Machine Printf Stats Trace
