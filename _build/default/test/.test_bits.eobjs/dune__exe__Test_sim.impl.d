test/test_sim.ml: Alcotest Asim Buffer Compile Component Coverage Error Fault Io List Machine Printf Profile Specs Stats String Trace Vcd
