test/test_expr.ml: Alcotest Asim_core Asim_syntax Bits Error Expr List Option Printf QCheck QCheck_alcotest
