test/test_cli.ml: Alcotest Asim Filename Fun List Printf String Sys
