test/test_pipeline.ml: Alcotest Asim Asim_analysis Asim_codegen Asim_stackm Buffer Interp List Machine Printf Specs String Trace
