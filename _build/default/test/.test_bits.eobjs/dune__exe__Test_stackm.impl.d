test/test_stackm.ml: Alcotest Array Asim Asim_core Asim_stackm Buffer List Printf QCheck QCheck_alcotest String
