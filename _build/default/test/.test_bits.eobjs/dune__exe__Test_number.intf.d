test/test_number.mli:
