test/test_analysis.ml: Alcotest Asim_analysis Asim_core Asim_stackm Asim_syntax Asim_tinyc Component Error Format List Spec String
