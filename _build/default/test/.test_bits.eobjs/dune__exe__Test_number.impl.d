test/test_number.ml: Alcotest Asim_core Error Number Printexc QCheck QCheck_alcotest
