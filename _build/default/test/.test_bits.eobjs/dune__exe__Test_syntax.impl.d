test/test_syntax.ml: Alcotest Array Asim Asim_core Asim_syntax Component Error Expr Filename List Spec String Sys
