program simulator(input, output);
{# quickstart: an 8-step traced counter}
var ljbinc, tempcount, adrcount, opncount: integer;
  cycles, cyclecount: integer;
  ljbcount: array[0..0] of integer;

function land (a, b: integer): integer;
type bitnos = 0..31;
  bigset = set of bitnos;
var intset: record case boolean of
  false: (i, j: integer);
  true: (x, y: bigset)
end;
begin
  with intset do begin
    i := a;
    j := b;
    x := x * y;
    land := i
  end
end {land};

procedure initvalues;
var i: integer;
begin
  for i := 0 to 0 do
    ljbcount[i] := 0;
  tempcount := 0;
end; {initvalues}

function dologic (funct, left, right: integer): integer;
const mask = 2147483647;
var value : integer;
begin
  value := 0;
  case funct of
  0 : value := 0;
  1 : value := right;
  2 : value := left;
  3 : value := mask - left;
  4 : value := left + right;
  5 : value := left - right;
  6 : begin
        value := land(left, mask);
        while (right > 0) and (value <> 0) do begin
          value := land(value + value, mask);
          right := right - 1
        end
      end;
  7 : value := left * right;
  8 : value := land(left, right);
  9 : value := left + right - land(left, right);
  10: value := left + right - land(left, right) * 2;
  11: value := 0;
  12: if left = right then value := 1;
  13: if left < right then value := 1
  end; {case}
  dologic := value;
end; {dologic}

function sinput (address : integer): integer;
var datum: char;
  data: integer;
begin
  if address = 0 then begin
    read(input, datum);
    sinput := ord(datum)
  end
  else if address = 1 then begin
    read(input, data);
    sinput := data
  end
  else begin
    write(output, 'Input from address ', address:1, ': ');
    readln(input, data);
    sinput := data;
  end
end; {sinput}

procedure soutput (address, data: integer);
begin
  if address = 0 then writeln(output, chr(data))
  else if address = 1 then writeln(output, data)
  else writeln(output, 'Output to address ', address:1, ': ', data:1)
end; {soutput}

begin
  initvalues;
  cycles := 8;
  cyclecount := 0;
  while cyclecount < cycles do begin
    ljbinc := tempcount + 1;
    write('Cycle ', cyclecount:3);
    write(' count= ', tempcount:1);
    writeln;
    adrcount := 0;
    tempcount := ljbinc;
    ljbcount[adrcount] := tempcount;
    cyclecount := cyclecount + 1
  end; {while}
end.
