(* The simulation runtime pieces: I/O handlers, statistics, trace sinks,
   fault plans, VCD output. *)

open Asim

(* --- Io ------------------------------------------------------------------- *)

let test_recording_feed () =
  let io, events = Io.recording ~feed:[ 10; 20 ] () in
  Alcotest.(check int) "first" 10 (io.Io.input ~address:1);
  Alcotest.(check int) "second" 20 (io.Io.input ~address:0);
  Alcotest.(check int) "exhausted" 0 (io.Io.input ~address:1);
  io.Io.output ~address:2 ~data:99;
  match events () with
  | [ Io.Input { address = 1; data = 10 }; Io.Input { address = 0; data = 20 };
      Io.Input { address = 1; data = 0 }; Io.Output { address = 2; data = 99 } ] ->
      ()
  | evs -> Alcotest.failf "unexpected events (%d)" (List.length evs)

let test_null_io () =
  Alcotest.(check int) "null input" 0 (Io.null.Io.input ~address:5);
  Io.null.Io.output ~address:5 ~data:1

let test_event_to_string () =
  Alcotest.(check string) "input" "input[1] -> 3"
    (Io.event_to_string (Io.Input { address = 1; data = 3 }));
  Alcotest.(check string) "output" "output[0] <- 65"
    (Io.event_to_string (Io.Output { address = 0; data = 65 }))

(* --- Stats ------------------------------------------------------------------ *)

let test_stats_counters () =
  let stats = Stats.create ~memories:[ "a"; "b" ] in
  Stats.bump_cycle stats;
  Stats.bump_cycle stats;
  Stats.count_op stats "a" Component.Op_read;
  Stats.count_op stats "a" Component.Op_write;
  Stats.count_op stats "b" Component.Op_input;
  Stats.count_op stats "b" Component.Op_output;
  Stats.count_op stats "b" Component.Op_output;
  Alcotest.(check int) "cycles" 2 (Stats.cycles stats);
  Alcotest.(check int) "a reads" 1 (Stats.memory stats "a").Stats.reads;
  Alcotest.(check int) "b outputs" 2 (Stats.memory stats "b").Stats.outputs;
  Alcotest.(check int) "total" 5 (Stats.total_accesses stats);
  Alcotest.(check bool) "report mentions memories" true
    (String.length (Stats.to_string stats) > 0)

(* --- Trace ------------------------------------------------------------------- *)

let test_trace_formats () =
  Alcotest.(check string) "cycle, no traced" "Cycle   7" (Trace.cycle_line ~cycle:7 []);
  Alcotest.(check string) "cycle with values" "Cycle  12 pc= 3 ac= 99"
    (Trace.cycle_line ~cycle:12 [ ("pc", 3); ("ac", 99) ]);
  Alcotest.(check string) "wide cycle numbers don't truncate" "Cycle 5545"
    (Trace.cycle_line ~cycle:5545 []);
  Alcotest.(check string) "write" "Write to ram at 15: 42"
    (Trace.write_line ~memory:"ram" ~address:15 ~data:42);
  Alcotest.(check string) "read" "Read from ram at 0: -5"
    (Trace.read_line ~memory:"ram" ~address:0 ~data:(-5))

let test_trace_sinks () =
  let buf = Buffer.create 64 in
  let sink = Trace.buffer_sink buf in
  sink "one";
  sink "two";
  Alcotest.(check string) "buffer" "one\ntwo\n" (Buffer.contents buf);
  let sink, lines = Trace.list_sink () in
  sink "a";
  sink "b";
  Alcotest.(check (list string)) "list" [ "a"; "b" ] (lines ());
  Trace.null_sink "dropped"

(* --- Fault ------------------------------------------------------------------- *)

let test_fault_windows () =
  let f = Fault.stuck_at ~first_cycle:5 ~last_cycle:7 "x" 1 in
  Alcotest.(check bool) "before" false (Fault.active f ~cycle:4);
  Alcotest.(check bool) "start" true (Fault.active f ~cycle:5);
  Alcotest.(check bool) "end" true (Fault.active f ~cycle:7);
  Alcotest.(check bool) "after" false (Fault.active f ~cycle:8);
  let forever = Fault.stuck_at "x" 1 in
  Alcotest.(check bool) "open-ended" true (Fault.active forever ~cycle:1000000)

let test_fault_kinds () =
  let apply fault v = Fault.apply [ fault ] ~cycle:0 ~component:"x" v in
  Alcotest.(check int) "stuck-at" 9 (apply (Fault.stuck_at "x" 9) 5);
  Alcotest.(check int) "flip" 4 (apply (Fault.flip_bit "x" 0) 5);
  Alcotest.(check int) "other component untouched" 5
    (Fault.apply [ Fault.stuck_at "y" 9 ] ~cycle:0 ~component:"x" 5)

let test_fault_stacking () =
  (* Two faults on the same component compose in order. *)
  let plan = [ Fault.stuck_at "x" 0; Fault.flip_bit "x" 3 ] in
  Alcotest.(check int) "stuck then flipped" 8 (Fault.apply plan ~cycle:0 ~component:"x" 5)

let test_fault_targets () =
  let plan = [ Fault.stuck_at "a" 0; Fault.flip_bit "b" 1; Fault.stuck_at "a" 1 ] in
  Alcotest.(check (list string)) "deduplicated" [ "a"; "b" ] (Fault.targets plan)

(* --- Vcd --------------------------------------------------------------------- *)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_vcd_structure () =
  let analysis = load_string Specs.divider in
  let machine = machine ~config:Machine.quiet_config analysis in
  let vcd = Vcd.record machine ~cycles:8 in
  List.iter
    (fun needle ->
      if not (contains vcd needle) then Alcotest.failf "VCD missing %S" needle)
    [
      "$timescale"; "$enddefinitions $end"; "$var wire 1 ! d0 $end"; "#0"; "#8";
    ];
  (* d0 toggles every cycle: its identifier '!' must appear at every step. *)
  let toggles =
    List.length
      (List.filter
         (fun line -> line = "0!" || line = "1!")
         (String.split_on_char '\n' vcd))
  in
  Alcotest.(check int) "d0 changes every cycle" 9 toggles

let test_vcd_skips_unchanged () =
  let analysis = load_string Specs.divider in
  let machine = machine ~config:Machine.quiet_config analysis in
  (* d2 only toggles every fourth cycle: over two cycles it never changes,
     so only the initial sample appears. *)
  let vcd = Vcd.record ~names:[ "d2" ] machine ~cycles:2 in
  let changes =
    List.length
      (List.filter
         (fun line -> String.length line > 1 && (line.[0] = 'b' || line.[0] = '0' || line.[0] = '1'))
         (String.split_on_char '\n' vcd))
  in
  Alcotest.(check bool) "fewer changes than samples" true (changes <= 2)

let test_vcd_defaults_to_traced () =
  let analysis = load_string Specs.divider in
  let machine = machine ~config:Machine.quiet_config analysis in
  let vcd = Vcd.record machine ~cycles:2 in
  Alcotest.(check bool) "d2 present" true (contains vcd " d2 $end");
  Alcotest.(check bool) "untraced n0 absent" false (contains vcd " n0 $end")

(* --- Profile ------------------------------------------------------------------- *)

let test_profile_histogram () =
  let analysis = load_string Specs.counter in
  let m = machine ~config:Machine.quiet_config analysis in
  let profiles = Profile.run m ~cycles:8 ~components:[ "count" ] in
  match profiles with
  | [ ("count", histogram) ] ->
      (* count takes values 1..8, once each *)
      Alcotest.(check int) "distinct values" 8 (List.length histogram);
      List.iter (fun (_, n) -> Alcotest.(check int) "each once" 1 n) histogram
  | _ -> Alcotest.fail "unexpected profile shape"

let test_profile_duty_cycle () =
  let analysis = load_string Specs.divider in
  let m = machine ~config:Machine.quiet_config analysis in
  let profiles = Profile.run m ~cycles:16 ~components:[ "d0"; "d2" ] in
  let hist name = List.assoc name profiles in
  (* d0 toggles every cycle: bit 0 high half the time; d2 every 4 cycles *)
  Alcotest.(check (float 0.01)) "d0 duty" 0.5 (Profile.duty_cycle (hist "d0") ~bit:0);
  Alcotest.(check (float 0.01)) "d2 duty" 0.5 (Profile.duty_cycle (hist "d2") ~bit:0)

let test_profile_top () =
  let histogram = [ (7, 100); (3, 50); (1, 2) ] in
  Alcotest.(check (list (pair int int))) "top 2" [ (7, 100); (3, 50) ]
    (Profile.top ~n:2 histogram);
  Alcotest.(check bool) "report text" true
    (String.length (Profile.to_string [ ("x", histogram) ]) > 0)

(* --- Coverage ---------------------------------------------------------------------- *)

let engine_fn config a = Compile.create ~config a

let test_coverage_counter () =
  let analysis = load_string Specs.counter in
  let faults = Coverage.stuck_at_faults ~bits_per_component:6 analysis in
  (* count and inc, 6 bits each, stuck low + stuck high *)
  Alcotest.(check int) "fault population" (2 * 6 * 2) (List.length faults);
  let report = Coverage.run ~engine:engine_fn analysis ~faults in
  Alcotest.(check int) "total" (List.length faults) report.Coverage.total;
  (* In 8 cycles count reaches 8: bits 0..3 matter, bits 4,5 stuck LOW are
     invisible, stuck HIGH are visible. *)
  let find component kind =
    List.find
      (fun r -> r.Coverage.fault.Fault.component = component && r.Coverage.fault.Fault.kind = kind)
      report.Coverage.results
  in
  Alcotest.(check bool) "count bit0 low detected" true
    (find "count" (Fault.Stuck_bit_low 0)).Coverage.detected;
  Alcotest.(check bool) "count bit5 high detected" true
    (find "count" (Fault.Stuck_bit_high 5)).Coverage.detected;
  Alcotest.(check bool) "count bit5 low undetected" false
    (find "count" (Fault.Stuck_bit_low 5)).Coverage.detected;
  Alcotest.(check bool) "coverage between 0 and 1" true
    (Coverage.coverage report > 0.4 && Coverage.coverage report < 1.0);
  Alcotest.(check bool) "report text" true
    (String.length (Coverage.to_string report) > 0)

let test_coverage_divergence_cycle () =
  let analysis = load_string Specs.counter in
  let fault =
    { Fault.component = "count"; kind = Fault.Stuck_bit_low 1; first_cycle = 0;
      last_cycle = None }
  in
  let report = Coverage.run ~engine:engine_fn analysis ~faults:[ fault ] in
  match report.Coverage.results with
  | [ r ] ->
      Alcotest.(check bool) "detected" true r.Coverage.detected;
      (* count first carries bit 1 at value 2 — the second sample (row 1) *)
      Alcotest.(check (option int)) "first divergence" (Some 1) r.Coverage.first_divergence
  | _ -> Alcotest.fail "one result expected"

let test_coverage_io_observation () =
  (* Observing only I/O: faults that never disturb the output stream are
     undetected even if internal values change. *)
  let source = "#io\nc inc out .\nA inc 4 c 1\nM out 2 c.0.1 3 1\nM c 0 inc 1 1\n.\n" in
  let analysis = load_string source in
  let faults =
    [
      { Fault.component = "c"; kind = Fault.Stuck_bit_low 0; first_cycle = 0;
        last_cycle = None };
      { Fault.component = "c"; kind = Fault.Stuck_bit_low 8; first_cycle = 0;
        last_cycle = None };
    ]
  in
  let report =
    Coverage.run ~observe:Coverage.Io_events ~cycles:12 ~engine:engine_fn analysis
      ~faults
  in
  match report.Coverage.results with
  | [ low; high ] ->
      Alcotest.(check bool) "low bit visible in output" true low.Coverage.detected;
      Alcotest.(check bool) "bit 8 invisible through out.0.1" false
        high.Coverage.detected
  | _ -> Alcotest.fail "two results expected"

(* --- Vcd parse / diff ------------------------------------------------------------ *)

let record_gray faults =
  let analysis = load_string Specs.gray_code in
  let config = { Machine.quiet_config with faults } in
  let m = machine ~config analysis in
  Vcd.record ~names:[ "count"; "gray" ] m ~cycles:16

let test_vcd_parse_roundtrip () =
  let waves = Vcd.parse (record_gray Fault.none) in
  Alcotest.(check (list string)) "signals" [ "count"; "gray" ]
    (List.map (fun w -> w.Vcd.signal) waves);
  let gray = List.find (fun w -> w.Vcd.signal = "gray") waves in
  Alcotest.(check int) "width" 4 gray.Vcd.bits;
  (* Gray code: one change per sample, 16 changes after the initial dump. *)
  Alcotest.(check int) "changes" 16 (List.length gray.Vcd.changes);
  (* Value reconstruction: the sample at time t pairs the post-update
     register with the combinational value computed from the pre-update
     register, so gray(t) = graycode(count(t-1)). *)
  let count = List.find (fun w -> w.Vcd.signal = "count") waves in
  for t = 1 to 16 do
    let c = Vcd.value_at count (t - 1) in
    Alcotest.(check int)
      (Printf.sprintf "gray at %d" t)
      ((c lxor (c lsr 1)) land 15)
      (Vcd.value_at gray t)
  done

let test_vcd_diff () =
  let healthy = Vcd.parse (record_gray Fault.none) in
  Alcotest.(check (list (pair string (list int)))) "self-diff is empty" []
    (Vcd.diff healthy healthy);
  let faulty =
    Vcd.parse (record_gray [ Fault.flip_bit ~first_cycle:5 ~last_cycle:8 "gray" 2 ])
  in
  (match Vcd.diff healthy faulty with
  | [ ("gray", times) ] ->
      Alcotest.(check int) "four divergent samples" 4 (List.length times)
  | other -> Alcotest.failf "unexpected diff (%d entries)" (List.length other));
  (* missing signal reported *)
  let only_count = List.filter (fun w -> w.Vcd.signal = "count") healthy in
  Alcotest.(check bool) "missing signal flagged" true
    (List.mem ("gray", [ -1 ]) (Vcd.diff healthy only_count))

let test_vcd_parse_errors () =
  let bad text =
    match Vcd.parse text with
    | exception Error.Error { phase = Error.Parsing; _ } -> ()
    | _ -> Alcotest.failf "expected parse error for %S" text
  in
  bad "#notanumber x";
  bad "b1010";
  bad "1? x";
  bad "$var wire x ! sig $end"

(* --- engine dispatch ----------------------------------------------------------- *)

let test_engine_names () =
  Alcotest.(check bool) "asim" true (engine_of_string "asim" = Some Interpreter);
  Alcotest.(check bool) "ASIM2" true (engine_of_string "ASIM2" = Some Compiled);
  Alcotest.(check bool) "unknown" true (engine_of_string "verilog" = None);
  Alcotest.(check string) "to_string" "interpreter" (engine_to_string Interpreter)

let test_run_string_uses_spec_cycles () =
  let m = run_string ~config:Machine.quiet_config Specs.counter in
  Alcotest.(check int) "= 8 respected" 8 (m.Machine.current_cycle ())

let () =
  Alcotest.run "sim"
    [
      ( "io",
        [
          Alcotest.test_case "recording" `Quick test_recording_feed;
          Alcotest.test_case "null" `Quick test_null_io;
          Alcotest.test_case "event text" `Quick test_event_to_string;
        ] );
      ("stats", [ Alcotest.test_case "counters" `Quick test_stats_counters ]);
      ( "trace",
        [
          Alcotest.test_case "formats" `Quick test_trace_formats;
          Alcotest.test_case "sinks" `Quick test_trace_sinks;
        ] );
      ( "fault",
        [
          Alcotest.test_case "windows" `Quick test_fault_windows;
          Alcotest.test_case "kinds" `Quick test_fault_kinds;
          Alcotest.test_case "stacking" `Quick test_fault_stacking;
          Alcotest.test_case "targets" `Quick test_fault_targets;
        ] );
      ( "coverage",
        [
          Alcotest.test_case "counter stuck-ats" `Quick test_coverage_counter;
          Alcotest.test_case "divergence cycle" `Quick test_coverage_divergence_cycle;
          Alcotest.test_case "io-only observation" `Quick test_coverage_io_observation;
        ] );
      ( "profile",
        [
          Alcotest.test_case "histogram" `Quick test_profile_histogram;
          Alcotest.test_case "duty cycle" `Quick test_profile_duty_cycle;
          Alcotest.test_case "top" `Quick test_profile_top;
        ] );
      ( "vcd",
        [
          Alcotest.test_case "structure" `Quick test_vcd_structure;
          Alcotest.test_case "deduplication" `Quick test_vcd_skips_unchanged;
          Alcotest.test_case "default signals" `Quick test_vcd_defaults_to_traced;
          Alcotest.test_case "parse round-trip" `Quick test_vcd_parse_roundtrip;
          Alcotest.test_case "waveform diff" `Quick test_vcd_diff;
          Alcotest.test_case "parse errors" `Quick test_vcd_parse_errors;
        ] );
      ( "driver",
        [
          Alcotest.test_case "engine names" `Quick test_engine_names;
          Alcotest.test_case "spec cycles" `Quick test_run_string_uses_spec_cycles;
        ] );
    ]
