(* Engine equivalence: for random well-formed specifications, the ASIM-style
   interpreter, the ASIM II closure compiler, and the compiler with the §4.4
   optimizations disabled must be observationally identical — same per-cycle
   traces, same I/O event streams, same final memory images, same
   statistics. *)

open Asim_core
module Gen = QCheck.Gen

let ( let* ) g f = Gen.( >>= ) g f

(* --- random specification generator -------------------------------------- *)

type shape = {
  n_comb : int;
  n_mem : int;
}

let mem_name i = Printf.sprintf "m%d" i

let comb_name i = Printf.sprintf "c%d" i

(* A small expression reading earlier combinational components (index < limit)
   or any memory; every atom is a narrow field, so widths always fit. *)
let gen_atom ~shape ~limit =
  let gen_ref =
    let* use_mem =
      if limit = 0 then Gen.return true
      else if shape.n_mem = 0 then Gen.return false
      else Gen.bool
    in
    let* name =
      if use_mem then Gen.map mem_name (Gen.int_bound (shape.n_mem - 1))
      else Gen.map comb_name (Gen.int_bound (limit - 1))
    in
    let* lo = Gen.int_bound 8 in
    let* w = Gen.int_range 1 4 in
    Gen.return (Expr.ref_range name lo (lo + w - 1))
  and gen_const =
    let* v = Gen.int_bound 15 in
    let* w = Gen.int_range 1 4 in
    Gen.return (Expr.num_w v ~width:w)
  in
  Gen.oneof [ gen_ref; gen_const ]

let gen_expr ~shape ~limit =
  let* n = Gen.int_range 1 3 in
  Gen.list_size (Gen.return n) (gen_atom ~shape ~limit)

let gen_alu ~shape ~limit name =
  let* fn =
    Gen.oneof
      [
        Gen.map (fun c -> [ Expr.num c ]) (Gen.int_bound 13);
        gen_expr ~shape ~limit;
      ]
  in
  let* left = gen_expr ~shape ~limit in
  let* right = gen_expr ~shape ~limit in
  Gen.return { Component.name; kind = Component.Alu { fn; left; right } }

let gen_selector ~shape ~limit name =
  let* bits = Gen.int_range 1 3 in
  let cases_n = 1 lsl bits in
  let* select =
    if limit = 0 && shape.n_mem = 0 then
      Gen.map (fun c -> [ Expr.num c ]) (Gen.int_bound (cases_n - 1))
    else
      let* base = gen_atom ~shape ~limit in
      match base with
      | Expr.Ref { name; _ } ->
          Gen.return [ Expr.ref_range name 0 (bits - 1) ]
      | _ -> Gen.map (fun c -> [ Expr.num c ]) (Gen.int_bound (cases_n - 1))
  in
  let* cases =
    Gen.list_size (Gen.return cases_n) (gen_expr ~shape ~limit)
  in
  Gen.return
    { Component.name; kind = Component.Selector { select; cases = Array.of_list cases } }

let gen_memory ~shape name =
  let limit = shape.n_comb in
  let* addr_bits = Gen.int_range 0 4 in
  let cells = 1 lsl addr_bits in
  let* addr =
    if addr_bits = 0 then Gen.return [ Expr.num 0 ]
    else
      let* base = gen_atom ~shape ~limit in
      match base with
      | Expr.Ref { name; _ } -> Gen.return [ Expr.ref_range name 0 (addr_bits - 1) ]
      | _ -> Gen.map (fun c -> [ Expr.num c ]) (Gen.int_bound (cells - 1))
  in
  let* data = gen_expr ~shape ~limit in
  let* op =
    Gen.oneof
      [
        Gen.map (fun c -> [ Expr.num c ]) (Gen.int_bound 15);
        Gen.map (fun a -> [ a ]) (gen_atom ~shape ~limit);
      ]
  in
  let* init =
    Gen.oneof
      [
        Gen.return None;
        Gen.map
          (fun l -> Some (Array.of_list l))
          (Gen.list_size (Gen.return cells) (Gen.int_bound 1000));
      ]
  in
  Gen.return { Component.name; kind = Component.Memory { addr; data; op; cells; init } }

let gen_spec =
  let* n_comb = Gen.int_range 1 6 in
  let* n_mem = Gen.int_range 1 3 in
  let shape = { n_comb; n_mem } in
  let rec gen_combs i acc =
    if i >= n_comb then Gen.return (List.rev acc)
    else
      let* c =
        Gen.oneof
          [ gen_alu ~shape ~limit:i (comb_name i); gen_selector ~shape ~limit:i (comb_name i) ]
      in
      gen_combs (i + 1) (c :: acc)
  in
  let* combs = gen_combs 0 [] in
  let rec gen_mems i acc =
    if i >= n_mem then Gen.return (List.rev acc)
    else
      let* m = gen_memory ~shape (mem_name i) in
      gen_mems (i + 1) (m :: acc)
  in
  let* mems = gen_mems 0 [] in
  let components = combs @ mems in
  let* traced_mask = Gen.list_size (Gen.return (List.length components)) Gen.bool in
  let decls =
    List.map2
      (fun (c : Component.t) traced -> { Spec.name = c.name; traced })
      components traced_mask
  in
  Gen.return { Spec.comment = "random"; cycles = Some 20; decls; components }

let arbitrary_spec = QCheck.make ~print:Pretty.spec gen_spec

(* A wider generator for the RTL-only property: expressions may start with a
   filling atom (a whole component reference or an un-suffixed constant),
   which exercises full-word values, negative intermediates and the
   filling-atom placement rules. *)
let gen_filling_atom ~shape ~limit =
  let gen_ref =
    let* use_mem =
      if limit = 0 then Gen.return true
      else if shape.n_mem = 0 then Gen.return false
      else Gen.bool
    in
    let* name =
      if use_mem then Gen.map mem_name (Gen.int_bound (shape.n_mem - 1))
      else Gen.map comb_name (Gen.int_bound (limit - 1))
    in
    Gen.return (Expr.ref_ name)
  in
  Gen.oneof [ gen_ref; Gen.map Expr.num (Gen.int_bound 65535) ]

let gen_expr_wide ~shape ~limit =
  let* narrow = gen_expr ~shape ~limit in
  Gen.oneof
    [
      Gen.return narrow;
      (let* filler = gen_filling_atom ~shape ~limit in
       Gen.return (filler :: narrow));
      (let* filler = gen_filling_atom ~shape ~limit in
       Gen.return [ filler ]);
    ]

let gen_spec_wide =
  let* n_comb = Gen.int_range 1 6 in
  let* n_mem = Gen.int_range 1 3 in
  let shape = { n_comb; n_mem } in
  let rec gen_combs i acc =
    if i >= n_comb then Gen.return (List.rev acc)
    else
      let* c =
        Gen.oneof
          [
            (let* fn =
               Gen.oneof
                 [
                   Gen.map (fun c -> [ Expr.num c ]) (Gen.int_bound 13);
                   gen_expr ~shape ~limit:i;
                 ]
             in
             let* left = gen_expr_wide ~shape ~limit:i in
             let* right = gen_expr_wide ~shape ~limit:i in
             Gen.return
               { Component.name = comb_name i; kind = Component.Alu { fn; left; right } });
            gen_selector ~shape ~limit:i (comb_name i);
          ]
      in
      gen_combs (i + 1) (c :: acc)
  in
  let* combs = gen_combs 0 [] in
  let rec gen_mems i acc =
    if i >= n_mem then Gen.return (List.rev acc)
    else
      let* m = gen_memory ~shape (mem_name i) in
      (* widen the data expression *)
      let* m =
        match m.Component.kind with
        | Component.Memory mem ->
            let* data = gen_expr_wide ~shape ~limit:n_comb in
            Gen.return
              { m with Component.kind = Component.Memory { mem with data } }
        | _ -> Gen.return m
      in
      gen_mems (i + 1) (m :: acc)
  in
  let* mems = gen_mems 0 [] in
  let components = combs @ mems in
  let decls =
    List.map (fun (c : Component.t) -> { Spec.name = c.name; traced = true }) components
  in
  Gen.return { Spec.comment = "random-wide"; cycles = Some 20; decls; components }

let arbitrary_spec_wide = QCheck.make ~print:Pretty.spec gen_spec_wide

(* --- observation ----------------------------------------------------------- *)

type observation = {
  trace : string;
  events : Asim_sim.Io.event list;
  cells : (string * int list) list;
  outputs : (string * int) list;
  total_accesses : int;
  error : string option;
}

let feed = [ 3; 1; 4; 1; 5; 9; 2; 6; 5; 3; 5; 8; 9; 7; 9; 3; 2; 3; 8; 4 ]

let observe build spec =
  let analysis = Asim_analysis.Analysis.analyze spec in
  let buf = Buffer.create 512 in
  let io, events = Asim_sim.Io.recording ~feed () in
  let config =
    { Asim_sim.Machine.io; trace = Asim_sim.Trace.buffer_sink buf; faults = [] }
  in
  let m : Asim_sim.Machine.t = build config analysis in
  let error =
    match Asim_sim.Machine.run m ~cycles:20 with
    | () -> None
    | exception Error.Error { phase = Error.Runtime; message; _ } -> Some message
  in
  let cells =
    List.map
      (fun (c : Component.t) ->
        match c.kind with
        | Component.Memory { cells; _ } ->
            (c.name, List.init cells (fun i -> m.Asim_sim.Machine.read_cell c.name i))
        | _ -> (c.name, []))
      spec.Spec.components
  in
  let outputs =
    List.map (fun (c : Component.t) -> (c.name, m.Asim_sim.Machine.read c.name))
      spec.Spec.components
  in
  {
    trace = Buffer.contents buf;
    events = events ();
    cells;
    outputs;
    total_accesses = Asim_sim.Stats.total_accesses m.Asim_sim.Machine.stats;
    error;
  }

let engines =
  [
    ("interp", fun config a -> Asim_interp.Interp.create ~config a);
    ("compiled", fun config a -> Asim_compile.Compile.create ~config a);
    ( "unoptimized",
      fun config a -> Asim_compile.Compile.create ~config ~optimize:false a );
  ]

let equivalence_test =
  QCheck.Test.make ~name:"engines are observationally equivalent" ~count:300
    arbitrary_spec
    (fun spec ->
      match List.map (fun (label, build) -> (label, observe build spec)) engines with
      | [] -> true
      | (_, reference) :: rest ->
          List.for_all
            (fun (label, obs) ->
              if obs = reference then true
              else
                QCheck.Test.fail_reportf
                  "engine %s diverges:@.trace A:@.%s@.trace B:@.%s@.errors: %s / %s"
                  label reference.trace obs.trace
                  (Option.value ~default:"-" reference.error)
                  (Option.value ~default:"-" obs.error))
            rest)

let wide_equivalence_test =
  QCheck.Test.make ~name:"engines agree on full-word expressions" ~count:200
    arbitrary_spec_wide
    (fun spec ->
      match List.map (fun (label, build) -> (label, observe build spec)) engines with
      | [] -> true
      | (_, reference) :: rest ->
          List.for_all
            (fun (label, obs) ->
              if obs = reference then true
              else
                QCheck.Test.fail_reportf
                  "engine %s diverges on wide spec:@.trace A:@.%s@.trace B:@.%s"
                  label reference.trace obs.trace)
            rest)

(* The gate level must also agree, on width-masked values, for every spec it
   can represent (no update-order hazards). *)
let gate_equivalence_test =
  QCheck.Test.make ~name:"gate level matches RTL on random specs" ~count:150
    arbitrary_spec
    (fun spec ->
      let analysis = Asim_analysis.Analysis.analyze spec in
      let hazardous =
        List.exists
          (function Error.Memory_update_order _ -> true | _ -> false)
          analysis.Asim_analysis.Analysis.warnings
      in
      QCheck.assume (not hazardous);
      let rtl_io, rtl_events = Asim_sim.Io.recording ~feed () in
      let rtl =
        Asim_compile.Compile.create
          ~config:{ Asim_sim.Machine.quiet_config with io = rtl_io }
          analysis
      in
      let gate_io, gate_events = Asim_sim.Io.recording ~feed () in
      let gates = Asim_gates.Circuit.of_analysis ~io:gate_io analysis in
      let ok = ref true in
      for _ = 1 to 20 do
        Asim_sim.Machine.run rtl ~cycles:1;
        Asim_gates.Circuit.step gates;
        List.iter
          (fun (c : Component.t) ->
            let w = max 1 (min 31 (Asim_gates.Circuit.width gates c.name)) in
            let expected = rtl.Asim_sim.Machine.read c.name land Bits.ones w in
            if expected <> Asim_gates.Circuit.read gates c.name then ok := false)
          spec.Spec.components
      done;
      if !ok && rtl_events () = gate_events () then true
      else
        QCheck.Test.fail_reportf "gate level diverges on:@.%s" (Pretty.spec spec))

(* Determinism: running the same engine twice gives the same observation. *)
let determinism_test =
  QCheck.Test.make ~name:"simulation is deterministic" ~count:100 arbitrary_spec
    (fun spec ->
      let _, build = List.nth engines 1 in
      observe build spec = observe build spec)

(* The pretty-printed spec parses back to the same structure. *)
let roundtrip_structure_test =
  QCheck.Test.make ~name:"print/parse round-trip preserves structure" ~count:200
    arbitrary_spec
    (fun spec -> Asim_syntax.Parser.parse_string (Pretty.spec spec) = spec)

(* The pretty-printed spec parses back and still behaves identically. *)
let roundtrip_behaviour_test =
  QCheck.Test.make ~name:"print/parse round-trip preserves behaviour" ~count:100
    arbitrary_spec
    (fun spec ->
      let reparsed = Asim_syntax.Parser.parse_string (Pretty.spec spec) in
      let _, build = List.nth engines 1 in
      observe build spec = observe build reparsed)

let () =
  Alcotest.run "equiv"
    [
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            equivalence_test; wide_equivalence_test; gate_equivalence_test;
            determinism_test; roundtrip_structure_test; roundtrip_behaviour_test;
          ] );
    ]
