(* Cross-reference checks, dependency ordering, width inference. *)

open Asim_core
module Analysis = Asim_analysis.Analysis
module Depgraph = Asim_analysis.Depgraph
module Width = Asim_analysis.Width

let parse = Asim_syntax.Parser.parse_string

let order_names spec =
  List.map (fun (c : Component.t) -> c.name) (Depgraph.order spec)

let test_dependency_order () =
  (* b depends on a, c on b; declared in reverse. *)
  let spec =
    parse "#c\na b c t .\nA c 4 b 1\nA b 4 a 1\nA a 4 t 1\nM t 0 c 1 1\n.\n"
  in
  Alcotest.(check (list string)) "sorted" [ "a"; "b"; "c" ] (order_names spec)

let test_memory_breaks_cycles () =
  (* inc depends on count (a memory): no combinational cycle. *)
  let spec = parse "#c\ncount inc .\nA inc 4 count 1\nM count 0 inc 1 1\n.\n" in
  Alcotest.(check (list string)) "just inc" [ "inc" ] (order_names spec)

let test_circular_dependency () =
  let spec = parse "#c\na b .\nA a 4 b 1\nA b 4 a 1\n.\n" in
  match Depgraph.order spec with
  | exception Error.Error { phase = Error.Analysis; message; _ } ->
      Alcotest.(check bool)
        "paper-style message" true
        (String.length message > 0
        && String.sub message 0 24 = "Circular dependency with")
  | _ -> Alcotest.fail "expected circular dependency error"

let test_self_dependency () =
  let spec = parse "#c\na .\nA a 4 a 1\n.\n" in
  match Depgraph.order spec with
  | exception Error.Error { phase = Error.Analysis; _ } -> ()
  | _ -> Alcotest.fail "expected circular dependency error"

let test_stable_order_is_deterministic () =
  let spec = parse "#c\nx y z t .\nA x 1 0 1\nA y 1 0 2\nA z 1 0 3\nM t 0 x 1 1\n.\n" in
  Alcotest.(check (list string)) "source order kept" [ "x"; "y"; "z" ] (order_names spec)

let test_undefined_reference () =
  let spec = parse "#c\na .\nA a 4 ghost 1\n.\n" in
  match Analysis.analyze spec with
  | exception Error.Error { phase = Error.Analysis; message; _ } ->
      Alcotest.(check string) "message" "Component <ghost> not found." message
  | _ -> Alcotest.fail "expected undefined reference error"

let test_declaration_warnings () =
  let spec = parse "#c\ndeclared a .\nA a 1 0 1\nA hidden 1 0 2\n.\n" in
  let analysis = Analysis.analyze spec in
  let messages = List.map Error.warning_to_string analysis.Analysis.warnings in
  Alcotest.(check bool) "declared but not defined" true
    (List.mem "Warning: declared declared but not defined." messages);
  Alcotest.(check bool) "defined but not declared" true
    (List.mem "Warning: hidden defined but not declared." messages)

let test_update_order_hazard () =
  (* b's data reads memory a, declared (and therefore updated) first. *)
  let spec = parse "#c\na b .\nM a 0 b 1 1\nM b 0 a 1 1\n.\n" in
  let analysis = Analysis.analyze spec in
  let hazards =
    List.filter
      (function Error.Memory_update_order _ -> true | _ -> false)
      analysis.Analysis.warnings
  in
  Alcotest.(check int) "one hazard (b after a)" 1 (List.length hazards);
  match hazards with
  | [ Error.Memory_update_order { reader; written_before } ] ->
      Alcotest.(check string) "reader" "b" reader;
      Alcotest.(check string) "written before" "a" written_before
  | _ -> Alcotest.fail "unexpected hazard shape"

let mem_of spec name =
  match (Spec.find_exn spec name).Component.kind with
  | Component.Memory m -> m
  | _ -> Alcotest.fail "expected memory"

let trace_cond = Alcotest.of_pp (fun ppf -> function
  | Analysis.Trace_never -> Format.pp_print_string ppf "never"
  | Analysis.Trace_always -> Format.pp_print_string ppf "always"
  | Analysis.Trace_runtime -> Format.pp_print_string ppf "runtime")

let test_trace_conditions () =
  let spec =
    parse
      "#c\nw r rw plain dyn x .\n\
       A x 1 0 1\n\
       M w 0 0 5 1\n\
       M r 0 0 8 1\n\
       M rw 0 0 13 1\n\
       M plain 0 0 1 1\n\
       M dyn 0 0 x.0.3 1\n\
       .\n"
  in
  Alcotest.check trace_cond "5 writes+trace" Analysis.Trace_always
    (Analysis.write_trace_condition (mem_of spec "w"));
  Alcotest.check trace_cond "8 = trace reads" Analysis.Trace_always
    (Analysis.read_trace_condition (mem_of spec "r"));
  Alcotest.check trace_cond "8 doesn't trace writes" Analysis.Trace_never
    (Analysis.write_trace_condition (mem_of spec "r"));
  Alcotest.check trace_cond "13 traces writes" Analysis.Trace_always
    (Analysis.write_trace_condition (mem_of spec "rw"));
  (* 13 has the write bit set, so [land 9 = 8] fails: no read trace. *)
  Alcotest.check trace_cond "13 has no read trace" Analysis.Trace_never
    (Analysis.read_trace_condition (mem_of spec "rw"));
  Alcotest.check trace_cond "plain write never traces" Analysis.Trace_never
    (Analysis.write_trace_condition (mem_of spec "plain"));
  Alcotest.check trace_cond "4-bit dynamic op needs runtime checks"
    Analysis.Trace_runtime
    (Analysis.write_trace_condition (mem_of spec "dyn"));
  Alcotest.check trace_cond "dynamic read trace" Analysis.Trace_runtime
    (Analysis.read_trace_condition (mem_of spec "dyn"))

let test_narrow_dynamic_op () =
  (* A 2-bit operation can never carry trace bits. *)
  let spec = parse "#c\nm x .\nA x 1 0 1\nM m 0 0 x.0.1 1\n.\n" in
  Alcotest.check trace_cond "too narrow" Analysis.Trace_never
    (Analysis.write_trace_condition (mem_of spec "m"))

let test_io_possible () =
  let spec = parse "#c\nro io dyn x .\nA x 1 0 1\nM ro 0 0 1 1\nM io 0 0 2 1\nM dyn 0 0 x.0.1 1\n.\n" in
  Alcotest.(check bool) "write-only cannot do I/O" false
    (Analysis.memory_io_possible (mem_of spec "ro"));
  Alcotest.(check bool) "input op" true (Analysis.memory_io_possible (mem_of spec "io"));
  Alcotest.(check bool) "dynamic might" true
    (Analysis.memory_io_possible (mem_of spec "dyn"))

(* --- lints ------------------------------------------------------------------ *)

let test_lints_clean_specs () =
  List.iter
    (fun source ->
      let analysis = Analysis.analyze (parse source) in
      Alcotest.(check int) "no lints" 0 (List.length (Analysis.lints analysis)))
    [
      "#c\ncount inc .\nA inc 4 count 1\nM count 0 inc 1 1\n.\n";
      (* exact-width selector *)
      "#c\ns m .\nS s m.0.1 1 2 3 4\nM m 0 s 1 1\n.\n";
    ]

let test_lint_selector_overrun () =
  (* a whole-width select over 2 cases can overrun *)
  let analysis = Analysis.analyze (parse "#c\ns c i .\nA i 4 c 1\nS s c 1 2\nM c 0 i 1 1\n.\n") in
  match Analysis.lints analysis with
  | [ Analysis.Selector_possible_overrun { selector = "s"; cases = 2; _ } ] -> ()
  | l -> Alcotest.failf "expected one selector lint, got %d" (List.length l)

let test_lint_const_out_of_range () =
  let analysis = Analysis.analyze (parse "#c\ns x .\nS s 7 1 2\nA x 1 0 1\n.\n") in
  Alcotest.(check bool) "constant overrun flagged" true
    (List.exists
       (function Analysis.Selector_possible_overrun _ -> true | _ -> false)
       (Analysis.lints analysis))

let test_lint_stack_machine_prog () =
  (* the real one: the program ROM the thesis bounded at 5545 cycles *)
  let analysis =
    Analysis.analyze
      (Asim_stackm.Microcode.spec ~program:Asim_stackm.Programs.sieve ())
  in
  match Analysis.lints analysis with
  | [ Analysis.Address_possible_overrun { memory = "prog"; _ } ] -> ()
  | l -> Alcotest.failf "expected exactly the prog lint, got %d" (List.length l)

let test_width_inference () =
  let spec = Asim_tinyc.Machine.spec ~program:Asim_tinyc.Machine.demo_image () in
  let env = Width.infer spec in
  let w name = List.assoc name env in
  Alcotest.(check int) "phase one-hot" 4 (w "phase");
  Alcotest.(check int) "decode" 4 (w "decode");
  (* the function input is computed at run time and dologic includes NOT,
     so the ALU's output can fill the word *)
  Alcotest.(check int) "alu" 31 (w "alu");
  Alcotest.(check int) "borrow flag" 1 (w "borrow");
  Alcotest.(check int) "ac" 11 (w "ac");
  Alcotest.(check int) "comparator output" 1 (w "sub")

let test_width_expr () =
  let spec = parse "#c\na b .\nA a 12 b 1\nM b 0 a 1 1\n.\n" in
  let env = Width.infer spec in
  Alcotest.(check int) "compare is 1 bit" 1 (List.assoc "a" env);
  Alcotest.(check int) "register follows data" 1 (List.assoc "b" env)

let () =
  Alcotest.run "analysis"
    [
      ( "dependencies",
        [
          Alcotest.test_case "topological order" `Quick test_dependency_order;
          Alcotest.test_case "memories break cycles" `Quick test_memory_breaks_cycles;
          Alcotest.test_case "circular dependency" `Quick test_circular_dependency;
          Alcotest.test_case "self dependency" `Quick test_self_dependency;
          Alcotest.test_case "deterministic order" `Quick test_stable_order_is_deterministic;
        ] );
      ( "resolution",
        [
          Alcotest.test_case "undefined reference" `Quick test_undefined_reference;
          Alcotest.test_case "declaration warnings" `Quick test_declaration_warnings;
          Alcotest.test_case "update-order hazard" `Quick test_update_order_hazard;
        ] );
      ( "trace and io",
        [
          Alcotest.test_case "trace conditions" `Quick test_trace_conditions;
          Alcotest.test_case "narrow dynamic op" `Quick test_narrow_dynamic_op;
          Alcotest.test_case "io possible" `Quick test_io_possible;
        ] );
      ( "lints",
        [
          Alcotest.test_case "clean specs" `Quick test_lints_clean_specs;
          Alcotest.test_case "selector overrun" `Quick test_lint_selector_overrun;
          Alcotest.test_case "constant out of range" `Quick test_lint_const_out_of_range;
          Alcotest.test_case "stack machine prog ROM" `Quick test_lint_stack_machine_prog;
        ] );
      ( "width",
        [
          Alcotest.test_case "tiny computer widths" `Quick test_width_inference;
          Alcotest.test_case "comparator width" `Quick test_width_expr;
        ] );
    ]
