(* The generate → compile → execute pipeline: generated simulators must
   reproduce the in-process engines' output byte for byte. *)

open Asim
module Codegen = Asim_codegen.Codegen
module Pipeline = Asim_codegen.Pipeline

let reference_trace source cycles =
  let analysis = load_string source in
  let buf = Buffer.create 1024 in
  let config = { Machine.quiet_config with trace = Trace.buffer_sink buf } in
  let m = Interp.create ~config analysis in
  Machine.run m ~cycles;
  Buffer.contents buf

let pipeline_output lang source cycles =
  match Pipeline.run ~cycles ~lang (load_string source) with
  | Ok r -> Ok r.Pipeline.output
  | Error e -> Error e

let check_lang lang label source cycles =
  if not (Pipeline.compiler_available lang) then
    Printf.printf "[skip] no %s compiler\n" (Codegen.lang_to_string lang)
  else
    match pipeline_output lang source cycles with
    | Error e -> Alcotest.failf "%s pipeline failed: %s" label e
    | Ok output ->
        Alcotest.(check string) label (reference_trace source cycles) output

let test_counter_ocaml () = check_lang Codegen.Ocaml "counter/ocaml" Specs.counter 8

let test_counter_c () = check_lang Codegen.C "counter/c" Specs.counter 8

let test_gray_ocaml () = check_lang Codegen.Ocaml "gray/ocaml" Specs.gray_code 16

let test_gray_c () = check_lang Codegen.C "gray/c" Specs.gray_code 16

let test_traffic_ocaml () =
  check_lang Codegen.Ocaml "traffic/ocaml" Specs.traffic_light 40

let test_divider_c () = check_lang Codegen.C "divider/c" Specs.divider 16

(* A spec with write-trace lines and a dynamic memory operation, to cover the
   trace-emission paths of the generated code.  [c] steps by 4 so the dynamic
   operation cycles through read / read-with-trace without ever selecting
   memory-mapped I/O (whose routing legitimately differs between the
   in-process handlers and a standalone binary's stdin/stdout). *)
let tracing_spec =
  "# tracing\nc inc m d .\nA inc 4 c 4\nM m 0 c 5 1\nM d 0 0 c.0.3 1\nM c 0 inc 1 1\n.\n"

let test_tracing_ocaml () = check_lang Codegen.Ocaml "tracing/ocaml" tracing_spec 12

let test_tracing_c () = check_lang Codegen.C "tracing/c" tracing_spec 12

(* The full Figure 5.1 workload: the generated simulator runs the sieve and
   prints the primes. *)
let test_sieve_ocaml () =
  if not (Pipeline.compiler_available Codegen.Ocaml) then
    print_endline "[skip] no ocaml compiler"
  else begin
    let analysis =
      Asim_analysis.Analysis.analyze
        (Asim_stackm.Microcode.spec ~program:Asim_stackm.Programs.sieve ())
    in
    match
      Pipeline.run ~cycles:Asim_stackm.Programs.sieve_cycles ~lang:Codegen.Ocaml
        analysis
    with
    | Error e -> Alcotest.failf "sieve pipeline failed: %s" e
    | Ok r ->
        let timings = r.Pipeline.timings in
        Alcotest.(check bool) "stage timings positive" true
          (timings.Pipeline.generate_s >= 0.
          && timings.Pipeline.compile_s > 0.
          && timings.Pipeline.run_s >= 0.);
        (* Every prime appears as an integer output line. *)
        let lines = String.split_on_char '\n' r.Pipeline.output in
        List.iter
          (fun p ->
            let line = string_of_int p in
            if not (List.mem line lines) then
              Alcotest.failf "prime %d missing from pipeline output" p)
          Asim_stackm.Programs.sieve_expected_primes
  end

let test_unavailable_language () =
  match Pipeline.run ~lang:Codegen.Pascal (load_string Specs.counter) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected Pascal pipeline to be unavailable"

let () =
  Alcotest.run "pipeline"
    [
      ( "ocaml backend",
        [
          Alcotest.test_case "counter" `Quick test_counter_ocaml;
          Alcotest.test_case "gray code" `Quick test_gray_ocaml;
          Alcotest.test_case "traffic light" `Quick test_traffic_ocaml;
          Alcotest.test_case "trace lines" `Quick test_tracing_ocaml;
          Alcotest.test_case "sieve (5545 cycles)" `Slow test_sieve_ocaml;
        ] );
      ( "c backend",
        [
          Alcotest.test_case "counter" `Quick test_counter_c;
          Alcotest.test_case "gray code" `Quick test_gray_c;
          Alcotest.test_case "divider" `Quick test_divider_c;
          Alcotest.test_case "trace lines" `Quick test_tracing_c;
        ] );
      ( "errors",
        [ Alcotest.test_case "unavailable language" `Quick test_unavailable_language ] );
    ]
