(* Cross-cutting unit tests: pretty-printer shapes, error rendering,
   dependency reporting, macro tables, VCD identifier allocation, large
   multiplexor cascades. *)

open Asim

let parse = Parser.parse_string

(* --- Pretty -------------------------------------------------------------- *)

let test_pretty_component () =
  let spec =
    parse
      "#p\na s m r .\nA a 4 m 1\nS s m.0 1 2\nM m 0 a 1 1\nM r 0 0 0 -4 12 34 56 78\n.\n"
  in
  let line name = Pretty.component (Spec.find_exn spec name) in
  Alcotest.(check string) "alu" "A a 4 m 1" (line "a");
  Alcotest.(check string) "selector" "S s m.0 1 2" (line "s");
  Alcotest.(check string) "memory" "M m 0 a 1 1" (line "m");
  Alcotest.(check string) "memory with init" "M r 0 0 0 -4 12 34 56 78" (line "r")

let test_pretty_spec_header () =
  let text = Pretty.spec (parse "#hello\n= 42\nx* y .\nA x 1 0 1\nA y 1 0 2\n.\n") in
  Alcotest.(check bool) "comment" true (String.length text > 0);
  let lines = String.split_on_char '\n' text in
  Alcotest.(check string) "line 1" "#hello" (List.nth lines 0);
  Alcotest.(check string) "line 2" "= 42" (List.nth lines 1);
  Alcotest.(check string) "decls" "x* y ." (List.nth lines 2)

(* --- Error ---------------------------------------------------------------- *)

let test_error_rendering () =
  let e =
    {
      Error.phase = Error.Parsing;
      message = "boom";
      position = Some { Error.line = 3; column = 7 };
      component = Some "alu";
    }
  in
  Alcotest.(check string)
    "full" "parse error at line 3, column 7 (component <alu>): boom"
    (Error.to_string e);
  Alcotest.(check string)
    "bare" "runtime error: x"
    (Error.to_string
       { Error.phase = Error.Runtime; message = "x"; position = None; component = None })

let test_error_fail_raises () =
  match Error.failf Error.Analysis "n=%d" 7 with
  | exception Error.Error { message = "n=7"; phase = Error.Analysis; _ } -> ()
  | _ -> Alcotest.fail "expected raise"

(* --- Depgraph ---------------------------------------------------------------- *)

let test_dependencies () =
  let spec = parse "#d\na b m .\nA a 4 b m\nA b 4 m 1\nM m 0 a 1 1\n.\n" in
  let deps name = Depgraph.dependencies spec (Spec.find_exn spec name) in
  Alcotest.(check (list string)) "a needs b (not the memory)" [ "b" ] (deps "a");
  Alcotest.(check (list string)) "b needs nothing combinational" [] (deps "b");
  Alcotest.(check (list string)) "memories impose no ordering" [] (deps "m")

(* --- Macro tables --------------------------------------------------------------- *)

let test_macro_definitions () =
  (* macro names parse greedily over letters and digits: "~a2" means the
     (undefined) macro a2, not "a" followed by "2" *)
  let _, tokens = Asim_syntax.Lexer.tokenize "#m\n~a 1\n~b ~a2\nfoo\n" in
  match Macro.consume tokens with
  | exception Error.Error { phase = Error.Parsing; _ } -> ()
  | _ -> Alcotest.fail "expected undefined-macro error for ~a2"

let test_macro_definitions_list () =
  let _, tokens = Asim_syntax.Lexer.tokenize "#m\n~a 1\n~b ~a.2\nfoo\n" in
  let table, _ = Macro.consume tokens in
  Alcotest.(check (list (pair string string)))
    "definition order, bodies expanded"
    [ ("a", "1"); ("b", "1.2") ]
    (Macro.definitions table)

(* --- VCD identifiers -------------------------------------------------------------- *)

let test_vcd_many_signals () =
  (* More than 94 signals forces two-character VCD identifier codes. *)
  let n = 120 in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "#many\n";
  for i = 0 to n - 1 do
    Buffer.add_string buf (Printf.sprintf "c%d%s " i (if i < 2 then "*" else ""))
  done;
  Buffer.add_string buf ".\n";
  for i = 0 to n - 1 do
    Buffer.add_string buf (Printf.sprintf "A c%d 1 0 %d\n" i (i mod 7))
  done;
  Buffer.add_string buf ".\n";
  let analysis = load_string (Buffer.contents buf) in
  let m = machine ~config:Machine.quiet_config analysis in
  let names = List.init n (fun i -> Printf.sprintf "c%d" i) in
  let vcd = Vcd.record ~names m ~cycles:2 in
  (* every signal must have a distinct id; the 95th onward is 2 chars *)
  Alcotest.(check bool) "has two-char ids" true
    (String.length vcd > 0
    &&
    let contains needle =
      let nl = String.length needle and hl = String.length vcd in
      let rec go i = i + nl <= hl && (String.sub vcd i nl = needle || go (i + 1)) in
      go 0
    in
    contains "$var wire" && contains (Printf.sprintf " c%d $end" (n - 1)))

(* --- Large selector cascades -------------------------------------------------------- *)

let test_netlist_large_mux () =
  let spec = Asim_stackm.Microcode.spec ~program:Asim_stackm.Programs.sieve () in
  let net = Asim_netlist.Synth.synthesize spec in
  let rom = List.find (fun (i : Asim_netlist.Synth.instance) -> i.component = "rom") net.Asim_netlist.Synth.instances in
  (* 64 cases -> a two-level 8-to-1 cascade *)
  Alcotest.(check bool) "8-to-1 muxes present" true
    (List.exists (fun (p, n) -> p = Asim_netlist.Parts.Mux_8to1 && n > 8) rom.Asim_netlist.Synth.parts)

(* --- Spec helpers --------------------------------------------------------------------- *)

let test_spec_make_defaults () =
  let c = { Component.name = "x"; kind = Component.Alu { fn = [ Expr.num 1 ]; left = [ Expr.num 0 ]; right = [ Expr.num 1 ] } } in
  let spec = Spec.make [ c ] in
  Alcotest.(check int) "decl added" 1 (List.length spec.Spec.decls);
  Alcotest.(check (list string)) "untraced" [] (Spec.traced_names spec);
  Alcotest.(check bool) "no cycles" true (spec.Spec.cycles = None)

let test_valid_names () =
  Alcotest.(check bool) "alnum" true (Spec.is_valid_name "abc123");
  Alcotest.(check bool) "leading digit" false (Spec.is_valid_name "1abc");
  Alcotest.(check bool) "underscore" false (Spec.is_valid_name "a_b");
  Alcotest.(check bool) "empty" false (Spec.is_valid_name "")

(* --- the small example machines behave as advertised ----------------------- *)

let series source comp cycles =
  let analysis = load_string source in
  let m = machine ~config:Machine.quiet_config analysis in
  List.init cycles (fun _ ->
      Asim_sim.Machine.run m ~cycles:1;
      m.Machine.read comp)

let test_seven_segment () =
  let expected =
    [ 0b0111111; 0b0000110; 0b1011011; 0b1001111; 0b1100110; 0b1101101;
      0b1111101; 0b0000111; 0b1111111; 0b1101111; 0b1110111; 0b1111100;
      0b0111001; 0b1011110; 0b1111001; 0b1110001 ]
  in
  (* at cycle k the decoder sees digit = k *)
  Alcotest.(check (list int)) "segment patterns" expected
    (series Specs.seven_segment "segments" 16)

let test_pwm () =
  (* duty = 5: high while phase < 5; phase at cycle k is k (mod 16 slice) *)
  let out = series Specs.pwm "out" 32 in
  let expected = List.init 32 (fun k -> if k mod 16 < 5 then 1 else 0) in
  Alcotest.(check (list int)) "pwm waveform" expected out

let test_shifter () =
  (* 172 = 0b10101100 loaded at the end of cycle 0, then rotated right; the
     line output is the register's low bit, one cycle delayed. *)
  let bits = series Specs.shifter "bit" 17 in
  let expected_register k =
    (* value after the load and k rotations *)
    let rec rot v n =
      if n = 0 then v else rot (((v land 1) lsl 7) lor (v lsr 1)) (n - 1)
    in
    rot 172 k
  in
  List.iteri
    (fun cycle bit ->
      if cycle >= 1 then
        Alcotest.(check int)
          (Printf.sprintf "bit at cycle %d" cycle)
          (expected_register (cycle - 1) land 1)
          bit)
    bits

let () =
  Alcotest.run "misc"
    [
      ( "pretty",
        [
          Alcotest.test_case "components" `Quick test_pretty_component;
          Alcotest.test_case "spec header" `Quick test_pretty_spec_header;
        ] );
      ( "error",
        [
          Alcotest.test_case "rendering" `Quick test_error_rendering;
          Alcotest.test_case "failf" `Quick test_error_fail_raises;
        ] );
      ("depgraph", [ Alcotest.test_case "dependencies" `Quick test_dependencies ]);
      ( "macro",
        [
          Alcotest.test_case "greedy names" `Quick test_macro_definitions;
          Alcotest.test_case "definitions list" `Quick test_macro_definitions_list;
        ] );
      ("vcd", [ Alcotest.test_case "many signals" `Quick test_vcd_many_signals ]);
      ("netlist", [ Alcotest.test_case "64-way mux cascade" `Quick test_netlist_large_mux ]);
      ( "spec",
        [
          Alcotest.test_case "make defaults" `Quick test_spec_make_defaults;
          Alcotest.test_case "name validity" `Quick test_valid_names;
        ] );
      ( "example machines",
        [
          Alcotest.test_case "seven segment" `Quick test_seven_segment;
          Alcotest.test_case "pwm" `Quick test_pwm;
          Alcotest.test_case "shifter" `Quick test_shifter;
        ] );
    ]
