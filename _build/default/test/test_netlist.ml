(* Hardware synthesis: catalog parts, instance mapping, BOM, wiring, DOT. *)

open Asim
module Parts = Asim_netlist.Parts
module Synth = Asim_netlist.Synth

let synth source = Synth.synthesize (load_string source).Analysis.spec

let instance net name =
  List.find (fun (i : Synth.instance) -> i.component = name) net.Synth.instances

let part_count net part =
  match List.assoc_opt part net.Synth.bom with Some n -> n | None -> 0

let test_register_sizing () =
  (* 1-bit register -> one dual flip-flop; 7-bit -> hex + dual. *)
  let net = synth "#c\nd n .\nA n 10 d 1\nM d 0 n.0 1 1\n.\n" in
  let parts_names ps = List.map (fun (p, n) -> (Parts.name p, n)) ps in
  Alcotest.(check (list (pair string int)))
    "1-bit register"
    [ ("dual D flip flop", 1) ]
    (parts_names (instance net "d").Synth.parts);
  let net7 = synth "#c\nd n .\nA n 10 d 1\nM d 0 n.0.6 1 1\n.\n" in
  Alcotest.(check (list (pair string int)))
    "7-bit register"
    [ ("hex D flip flop", 1); ("dual D flip flop", 1) ]
    (parts_names (instance net7 "d").Synth.parts)

let test_adder_and_comparator () =
  let net =
    synth "#c\nsum cmp a .\nA sum 4 a.0.7 1\nA cmp 12 a.0.7 5\nM a 0 sum.0.7 1 1\n.\n"
  in
  Alcotest.(check int) "two 4-bit adders for 9 bits" 3
    (part_count net Parts.Adder_4bit);
  (* sum: 9 bits -> 3 adders?  ceil(9/4)=3. *)
  Alcotest.(check int) "one comparator" 2 (part_count net Parts.Comparator_4bit)

let test_mux_selection () =
  let two = synth "#c\ns a .\nS s a.0 1 2\nM a 0 s.0.3 1 1\n.\n" in
  Alcotest.(check bool) "2-way uses quad 2-to-1" true
    (part_count two Parts.Quad_mux_2to1 > 0);
  let four = synth "#c\ns a .\nS s a.0.1 1 2 3 4\nM a 0 s.0.3 1 1\n.\n" in
  Alcotest.(check bool) "4-way uses dual 4-to-1" true
    (part_count four Parts.Dual_mux_4to1 > 0);
  let eight = synth "#c\ns a .\nS s a.0.2 1 2 3 4 5 6 7 8\nM a 0 s.0.3 1 1\n.\n" in
  Alcotest.(check bool) "8-way uses 8-to-1" true (part_count eight Parts.Mux_8to1 > 0)

let test_gate_packs () =
  let net =
    synth
      "#c\ng1 g2 g3 g4 a .\nA g1 8 a.0.3 5.4\nA g2 9 a.0.3 5.4\nA g3 10 a.0.3 5.4\n\
       A g4 3 a.0.3 0\nM a 0 g1 1 1\n.\n"
  in
  Alcotest.(check int) "AND pack" 1 (part_count net Parts.Quad_and);
  Alcotest.(check int) "OR pack" 1 (part_count net Parts.Quad_or);
  Alcotest.(check int) "XOR pack" 1 (part_count net Parts.Quad_xor);
  Alcotest.(check bool) "inverters" true (part_count net Parts.Hex_inverter > 0)

let test_ram_vs_rom () =
  (* Written multi-cell memory -> RAM; initialized, never-written -> ROM. *)
  let net =
    synth
      "#c\nc inc ram rom .\nA inc 4 c 1\nM ram c.0.1 c 1 4\nM rom c.0.1 0 0 -4 1 2 3 4\n\
       M c 0 inc 1 1\n.\n"
  in
  Alcotest.(check string) "ram role" "RAM" (instance net "ram").Synth.role;
  Alcotest.(check string) "rom role" "ROM" (instance net "rom").Synth.role

let test_pass_through_needs_no_parts () =
  let net = synth "#c\np a .\nA p 2 a 0\nM a 0 p 1 1\n.\n" in
  Alcotest.(check int) "wiring only" 0 (List.length (instance net "p").Synth.parts)

let test_wiring () =
  let net = synth (List.assoc "counter" Specs.all) in
  let wire =
    List.find
      (fun (w : Synth.wire) -> w.from_component = "count" && w.to_component = "inc")
      net.Synth.wires
  in
  Alcotest.(check string) "port" "left" wire.Synth.to_port;
  Alcotest.(check string) "bits" "[all]" wire.Synth.bits

let test_wiring_field_bits () =
  let net = synth "#c\nx a .\nA x 1 0 a.3.4\nM a 0 x 1 1\n.\n" in
  let wire =
    List.find (fun (w : Synth.wire) -> w.from_component = "a") net.Synth.wires
  in
  Alcotest.(check string) "field" "[3..4]" wire.Synth.bits

let test_tiny_computer_bom () =
  (* The Appendix F machine: its parts list uses exactly the thesis's part
     vocabulary. *)
  let spec = Asim_tinyc.Machine.spec ~program:Asim_tinyc.Machine.demo_image () in
  let net = Synth.synthesize spec in
  let bom = Synth.bom_to_string net in
  List.iter
    (fun needle ->
      let nl = String.length needle and hl = String.length bom in
      let rec go i = i + nl <= hl && (String.sub bom i nl = needle || go (i + 1)) in
      if not (go 0) then Alcotest.failf "BOM missing %S:\n%s" needle bom)
    [
      "dual D flip flop"; "quad D flip flop"; "hex D flip flop"; "4 bit adder";
      "4 bit comparator"; "4 bit alu"; "quad AND"; "128 x 8 bit RAM";
      "to 1 multiplexor";
    ]

let test_stack_machine_bom_has_big_ram () =
  let spec = Asim_stackm.Microcode.spec ~program:Asim_stackm.Programs.sieve () in
  let net = Synth.synthesize spec in
  Alcotest.(check bool) "4K RAM chips" true
    (List.exists
       (fun (p, _) -> match p with Parts.Ram { words = 4096; _ } -> true | _ -> false)
       net.Synth.bom)

let test_dot_output () =
  let net = synth (List.assoc "counter" Specs.all) in
  let dot = Synth.to_dot net in
  Alcotest.(check bool) "digraph" true (String.length dot > 20);
  Alcotest.(check string) "header" "digraph asim {" (String.sub dot 0 14)

let test_text_reports_nonempty () =
  let net = synth (List.assoc "traffic-light" Specs.all) in
  Alcotest.(check bool) "instances" true (String.length (Synth.instances_to_string net) > 0);
  Alcotest.(check bool) "wiring" true (String.length (Synth.wiring_to_string net) > 0);
  Alcotest.(check bool) "bom" true (String.length (Synth.bom_to_string net) > 0)

let () =
  Alcotest.run "netlist"
    [
      ( "parts",
        [
          Alcotest.test_case "register sizing" `Quick test_register_sizing;
          Alcotest.test_case "adders and comparators" `Quick test_adder_and_comparator;
          Alcotest.test_case "multiplexors" `Quick test_mux_selection;
          Alcotest.test_case "gate packs" `Quick test_gate_packs;
          Alcotest.test_case "ram vs rom" `Quick test_ram_vs_rom;
          Alcotest.test_case "pass-through" `Quick test_pass_through_needs_no_parts;
        ] );
      ( "wiring",
        [
          Alcotest.test_case "whole wire" `Quick test_wiring;
          Alcotest.test_case "field bits" `Quick test_wiring_field_bits;
        ] );
      ( "machines",
        [
          Alcotest.test_case "tiny computer BOM" `Quick test_tiny_computer_bom;
          Alcotest.test_case "stack machine RAM" `Quick test_stack_machine_bom_has_big_ram;
          Alcotest.test_case "dot" `Quick test_dot_output;
          Alcotest.test_case "reports" `Quick test_text_reports_nonempty;
        ] );
    ]
