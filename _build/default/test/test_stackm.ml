(* The Itty Bitty Stack Machine: the Appendix D/E reproduction and the
   recovered instruction set. *)

module Isa = Asim_stackm.Isa
module Asm = Asim_stackm.Asm
module Microcode = Asim_stackm.Microcode
module Programs = Asim_stackm.Programs
module Demos = Asim_stackm.Demos

let primes = Programs.sieve_expected_primes

let check_outputs label expected outputs =
  Alcotest.(check (list int)) label expected outputs

(* --- the headline reproduction -------------------------------------------- *)

let test_sieve_interp () =
  check_outputs "primes under the interpreter" primes
    (Programs.run_collect_outputs ~engine:`Interp Programs.sieve)

let test_sieve_compiled () =
  check_outputs "primes under the compiler" primes
    (Programs.run_collect_outputs ~engine:`Compiled Programs.sieve)

let test_sieve_needs_all_cycles () =
  (* §5.2: the run uses the full 5545-cycle budget; 90% is not enough to
     emit the last prime. *)
  let early = Programs.run_collect_outputs ~cycles:5000 Programs.sieve in
  Alcotest.(check bool) "shorter run emits fewer primes" true
    (List.length early < List.length primes)

let test_sieve_reassembled () =
  check_outputs "reassembled sieve agrees" primes
    (Programs.run_collect_outputs ~cycles:Demos.sieve_reassembled_cycles
       Demos.sieve_reassembled)

(* --- assembler-written programs ------------------------------------------- *)

let test_countdown () =
  check_outputs "countdown 7" [ 7; 6; 5; 4; 3; 2; 1 ]
    (Programs.run_collect_outputs ~cycles:(Demos.countdown_cycles 7) (Demos.countdown 7))

let test_countdown_one () =
  check_outputs "countdown 1" [ 1 ]
    (Programs.run_collect_outputs ~cycles:(Demos.countdown_cycles 1) (Demos.countdown 1))

let test_squares () =
  check_outputs "squares 5" [ 1; 4; 9; 16; 25 ]
    (Programs.run_collect_outputs ~cycles:(Demos.squares_cycles 5) (Demos.squares 5))

let test_fibonacci () =
  check_outputs "first 8 fibonacci" [ 0; 1; 1; 2; 3; 5; 8; 13 ]
    (Programs.run_collect_outputs ~cycles:(Demos.fibonacci_cycles 8) (Demos.fibonacci 8))

let test_gcd () =
  let gcd a b =
    Programs.run_collect_outputs ~cycles:Demos.gcd_cycles (Demos.gcd a b)
  in
  check_outputs "gcd 48 36" [ 12 ] (gcd 48 36);
  check_outputs "gcd 17 5 (coprime)" [ 1 ] (gcd 17 5);
  check_outputs "gcd 9 9 (equal)" [ 9 ] (gcd 9 9);
  check_outputs "gcd 5 40 (divides)" [ 5 ] (gcd 5 40)

let test_gcd_all_levels () =
  let program = Demos.gcd 252 105 in
  let rtl = Programs.run_collect_outputs ~cycles:Demos.gcd_cycles program in
  let isp = Asim_stackm.Ispsim.run_collect_outputs program in
  Alcotest.(check (list int)) "rtl result" [ 21 ] rtl;
  Alcotest.(check (list int)) "isp agrees" rtl isp

let test_sum_of_inputs () =
  let spec = Microcode.spec ~program:Demos.sum_of_inputs () in
  let analysis = Asim.Analysis.analyze spec in
  let io, events = Asim.Io.recording ~feed:[ 7; 10; 25; 0 ] () in
  let m =
    Asim.Compile.create ~config:{ Asim.Machine.quiet_config with io } analysis
  in
  Asim.Machine.run m ~cycles:Demos.sum_of_inputs_cycles;
  let outs =
    List.filter_map
      (function Asim.Io.Output { data; _ } -> Some data | _ -> None)
      (events ())
  in
  Alcotest.(check (list int)) "sum" [ 42 ] outs

(* --- ISA encode/decode ------------------------------------------------------ *)

let all_ops =
  [
    Isa.Ldz; Isa.Ld0 0; Isa.Ld0 15; Isa.Ld1 9; Isa.Dupe; Isa.And_; Isa.Less;
    Isa.Equal; Isa.Not_; Isa.Neg; Isa.Add; Isa.Mpy; Isa.Ld; Isa.St; Isa.Bz;
    Isa.Glob; Isa.Nop; Isa.Ldc 0; Isa.Ldc 58; Isa.Ldc 4096; Isa.Ldc 65535;
    Isa.Swap; Isa.Index; Isa.Enter; Isa.Exit_; Isa.Call;
  ]

let test_encode_decode_roundtrip () =
  List.iter
    (fun op ->
      let words = Array.of_list (Isa.encode op) in
      match Isa.decode words 0 with
      | Some (decoded, next) ->
          if decoded <> op then Alcotest.failf "round-trip failed for %s" (Isa.name op);
          Alcotest.(check int) (Isa.name op ^ " size") (Array.length words) next
      | None -> Alcotest.failf "decode failed for %s" (Isa.name op))
    all_ops

let test_encode_sizes () =
  Alcotest.(check int) "single word" 1 (Isa.size Isa.Dupe);
  Alcotest.(check int) "nibble push" 2 (Isa.size (Isa.Ld0 3));
  Alcotest.(check int) "escape" 2 (Isa.size Isa.Swap);
  Alcotest.(check int) "long constant" 6 (Isa.size (Isa.Ldc 100))

let test_encode_bounds () =
  Alcotest.check_raises "nibble range"
    (Invalid_argument "Isa: nibble operand out of range") (fun () ->
      ignore (Isa.encode (Isa.Ld0 16)));
  Alcotest.check_raises "ldc range"
    (Invalid_argument "Isa: LDC constant out of range") (fun () ->
      ignore (Isa.encode (Isa.Ldc 65536)))

let test_disassemble_sieve () =
  let listing = Isa.disassemble Programs.sieve in
  List.iter
    (fun needle ->
      if
        not
          (let nl = String.length needle and hl = String.length listing in
           let rec go i =
             i + nl <= hl && (String.sub listing i nl = needle || go (i + 1))
           in
           go 0)
      then Alcotest.failf "listing should mention %s" needle)
    [ "enter"; "ldc 58"; "ldc 4096"; "ldc 93"; "swap"; "equal"; "bz" ]

(* --- assembler --------------------------------------------------------------- *)

let test_assembler_forward_backward () =
  (* jump over a block, then back: both offset signs and sizes. *)
  let program =
    Asm.assemble
      [
        Asm.op Isa.Nop;
        Asm.push 0;
        Asm.bz "fwd";
        Asm.push 999;
        Asm.label "fwd";
        Asm.label "halt";
        Asm.jmp "halt";
      ]
  in
  Alcotest.(check bool) "assembles" true (Array.length program > 0)

let test_assembler_duplicate_label () =
  match Asm.assemble [ Asm.label "x"; Asm.label "x" ] with
  | exception Asim.Error.Error _ -> ()
  | _ -> Alcotest.fail "expected duplicate-label error"

let test_assembler_undefined_label () =
  match Asm.assemble [ Asm.jmp "nowhere" ] with
  | exception Asim.Error.Error _ -> ()
  | _ -> Alcotest.fail "expected undefined-label error"

let test_assembler_long_branch () =
  (* A branch across > 31 words forces the 6-word LDC offset encoding and
     the fixpoint must converge. *)
  let filler = List.init 40 (fun _ -> Asm.op Isa.Dupe) in
  let program =
    Asm.assemble
      (List.concat
         [
           [ Asm.push 0; Asm.bz "far" ];
           filler;
           [ Asm.label "far"; Asm.label "halt"; Asm.jmp "halt" ];
         ])
  in
  (* after the 1-word "push 0", the branch offset must be an escaped LDC:
     words 0,1 then four nibbles *)
  Alcotest.(check int) "ldz" 1 program.(0);
  Alcotest.(check int) "escape word" 0 program.(1);
  Alcotest.(check int) "ldc selector" 1 program.(2)

(* Run an assembled long-branch program to prove the offsets really land. *)
let test_long_branch_runs () =
  let filler =
    (* skipped code that would output 99 if executed *)
    List.concat (List.init 8 (fun _ -> [ Asm.push 99 ] @ Asm.output_top))
  in
  let program =
    Asm.assemble
      (List.concat
         [
           [ Asm.op Isa.Nop ];
           Asm.enter_frame 2;
           [ Asm.push 0; Asm.bz "past" ];
           filler;
           [ Asm.label "past"; Asm.push 5 ];
           Asm.output_top;
           [ Asm.label "halt"; Asm.jmp "halt" ];
         ])
  in
  check_outputs "only 5 is emitted" [ 5 ]
    (Programs.run_collect_outputs ~cycles:2000 program)

(* --- textual assembly --------------------------------------------------------- *)

module Asmtext = Asim_stackm.Asmtext

let test_asmtext_countdown () =
  let source =
    "; countdown\n\
     \tnop\n\
     \tenter 2\n\
     \tpush 4\n\
     \tstore 1\n\
     loop: load 1\n\
     \tout\n\
     \tload 1\n\
     \tpush 1\n\
     \tneg\n\
     \tadd\n\
     \tdupe\n\
     \tstore 1\n\
     \tbz done   ; exit when zero\n\
     \tjmp loop\n\
     done: jmp done\n"
  in
  check_outputs "assembled from text" [ 4; 3; 2; 1 ]
    (Programs.run_collect_outputs ~cycles:2500 (Asmtext.assemble source))

let test_asmtext_matches_builder () =
  (* The textual form of the countdown must encode identically to the
     combinator-built program. *)
  let source =
    "nop\nenter 2\npush 5\nstore 1\nloop: load 1\nout\nload 1\npush 1\nneg\n\
     add\ndupe\nstore 1\nbz done\njmp loop\ndone: jmp done\n"
  in
  Alcotest.(check (list int))
    "identical images"
    (Array.to_list (Demos.countdown 5))
    (Array.to_list (Asmtext.assemble source))

let test_asmtext_errors () =
  let bad source =
    match Asmtext.parse source with
    | exception Asim.Error.Error { phase = Asim.Error.Parsing; _ } -> ()
    | _ -> Alcotest.failf "expected parse error for %S" source
  in
  bad "frobnicate\n";
  bad "push\n";
  bad "push banana\n";
  bad "add 3\n";
  bad "bz 12..\n"

(* --- property: random straight-line programs vs a reference evaluator ------- *)

type sop =
  | SPush of int
  | SDupe
  | SSwap
  | SAdd
  | SMpy
  | SAnd
  | SLess
  | SEqual
  | SNeg
  | SNot

let sop_name = function
  | SPush v -> Printf.sprintf "push %d" v
  | SDupe -> "dupe"
  | SSwap -> "swap"
  | SAdd -> "add"
  | SMpy -> "mpy"
  | SAnd -> "and"
  | SLess -> "less"
  | SEqual -> "equal"
  | SNeg -> "neg"
  | SNot -> "not"

(* Reference stack semantics (top of stack = list head), as recovered from
   the microcode: binary operations compute [below OP top]. *)
let reference_eval ops =
  let step st op =
    match (op, st) with
    | SPush v, st -> v :: st
    | SDupe, a :: r -> a :: a :: r
    | SSwap, a :: b :: r -> b :: a :: r
    | SAdd, a :: b :: r -> (b + a) :: r
    | SMpy, a :: b :: r -> (b * a) :: r
    | SAnd, a :: b :: r -> (b land a) :: r
    (* comparisons push the all-ones truth value -1 (the microcode negates
       the ALU's 1), which the [NEG]-then-[BZ] branching idioms rely on *)
    | SLess, a :: b :: r -> (if b < a then -1 else 0) :: r
    | SEqual, a :: b :: r -> (if b = a then -1 else 0) :: r
    | SNeg, a :: r -> -a :: r
    | SNot, a :: r -> (Asim_core.Bits.mask - a) :: r
    | _ -> Alcotest.fail "generator produced an under-stacked program"
  in
  List.fold_left step [] ops

let items_of_sop = function
  | SPush v -> [ Asm.push v ]
  | SDupe -> [ Asm.op Isa.Dupe ]
  | SSwap -> [ Asm.op Isa.Swap ]
  | SAdd -> [ Asm.op Isa.Add ]
  | SMpy -> [ Asm.op Isa.Mpy ]
  | SAnd -> [ Asm.op Isa.And_ ]
  | SLess -> [ Asm.op Isa.Less ]
  | SEqual -> [ Asm.op Isa.Equal ]
  | SNeg -> [ Asm.op Isa.Neg ]
  | SNot -> [ Asm.op Isa.Not_ ]

let program_of_sops ops =
  let depth = List.length (reference_eval ops) in
  Asm.assemble
    (List.concat
       [
         [ Asm.op Isa.Nop ];
         Asm.enter_frame 2;
         List.concat_map items_of_sop ops;
         List.concat (List.init depth (fun _ -> Asm.output_top));
         [ Asm.label "halt"; Asm.jmp "halt" ];
       ])

let gen_sops =
  QCheck.Gen.(
    let unary = [ (fun _ -> SDupe); (fun _ -> SNeg); (fun _ -> SNot) ] in
    let binary =
      [ (fun _ -> SSwap); (fun _ -> SAdd); (fun _ -> SMpy); (fun _ -> SAnd);
        (fun _ -> SLess); (fun _ -> SEqual) ]
    in
    let rec build n depth acc =
      if n = 0 then return (List.rev acc)
      else
        let candidates =
          [ map (fun v -> SPush v) (int_bound 200) ]
          @ (if depth >= 1 then List.map (fun f -> map f unit) unary else [])
          @ if depth >= 2 then List.map (fun f -> map f unit) binary else []
        in
        oneof candidates >>= fun op ->
        let depth =
          match op with
          | SPush _ | SDupe -> depth + 1
          | SNeg | SNot | SSwap -> depth
          | SAdd | SMpy | SAnd | SLess | SEqual -> depth - 1
        in
        build (n - 1) depth (op :: acc)
    in
    int_range 1 12 >>= fun n -> build n 0 [])

let gen_isa_op =
  QCheck.Gen.(
    oneof
      [
        oneofl
          [ Isa.Ldz; Isa.Dupe; Isa.And_; Isa.Less; Isa.Equal; Isa.Not_; Isa.Neg;
            Isa.Add; Isa.Mpy; Isa.Ld; Isa.St; Isa.Bz; Isa.Glob; Isa.Nop;
            Isa.Swap; Isa.Index; Isa.Enter; Isa.Exit_; Isa.Call ];
        map (fun n -> Isa.Ld0 n) (int_bound 15);
        map (fun n -> Isa.Ld1 n) (int_bound 15);
        map (fun v -> Isa.Ldc v) (int_bound 0xFFFF);
      ])

let prop_isa_roundtrip =
  QCheck.Test.make ~name:"ISA encode/decode round-trips op streams" ~count:200
    (QCheck.make
       ~print:(fun ops -> String.concat "; " (List.map Isa.name ops))
       QCheck.Gen.(list_size (int_range 1 20) gen_isa_op))
    (fun ops ->
      let words = Array.of_list (List.concat_map Isa.encode ops) in
      let rec decode_all i acc =
        if i >= Array.length words then List.rev acc
        else
          match Isa.decode words i with
          | Some (op, next) -> decode_all next (op :: acc)
          | None -> List.rev acc
      in
      decode_all 0 [] = ops)

let prop_stack_programs =
  (* Three implementations must agree: the abstract reference model, the
     instruction-set-level simulator, and the microcoded RTL machine. *)
  let print ops = String.concat "; " (List.map sop_name ops) in
  QCheck.Test.make ~name:"random stack programs: model = ISP = RTL" ~count:60
    (QCheck.make ~print gen_sops)
    (fun ops ->
      let expected = reference_eval ops in
      let program = program_of_sops ops in
      let cycles = 400 + (150 * List.length ops) in
      let rtl = Programs.run_collect_outputs ~cycles program in
      let isp = Asim_stackm.Ispsim.run_collect_outputs program in
      if rtl = expected && isp = expected then true
      else
        QCheck.Test.fail_reportf
          "program [%s]:@.expected %s@.rtl      %s@.isp      %s" (print ops)
          (String.concat " " (List.map string_of_int expected))
          (String.concat " " (List.map string_of_int rtl))
          (String.concat " " (List.map string_of_int isp)))

(* --- the instruction-set level (ISP, paragraph 1.2 / 2.2.4) ------------------ *)

module Ispsim = Asim_stackm.Ispsim

let test_isp_sieve () =
  check_outputs "verbatim image at ISP level" primes
    (Ispsim.run_collect_outputs Programs.sieve);
  check_outputs "reassembled image at ISP level" primes
    (Ispsim.run_collect_outputs Demos.sieve_reassembled)

let test_isp_programs () =
  check_outputs "countdown" [ 4; 3; 2; 1 ] (Ispsim.run_collect_outputs (Demos.countdown 4));
  check_outputs "squares" [ 1; 4; 9 ] (Ispsim.run_collect_outputs (Demos.squares 3))

let test_isp_input () =
  let io, events = Asim.Io.recording ~feed:[ 5; 6; 0 ] () in
  let t = Ispsim.create ~io Demos.sum_of_inputs in
  ignore (Ispsim.run t);
  let outs =
    List.filter_map
      (function Asim.Io.Output { data; _ } -> Some data | _ -> None)
      (events ())
  in
  check_outputs "sum at ISP level" [ 11 ] outs

let test_isp_halt_detection () =
  let t = Ispsim.create (Demos.countdown 3) in
  let executed = Ispsim.run t in
  Alcotest.(check bool) "terminates well under the budget" true (executed < 1000)

let test_isp_speed_ratio () =
  (* One ISP instruction costs several RTL cycles — the §1.3 trade-off:
     instruction-set simulation provides no timing but runs much faster.
     The thesis's sieve: 5545 cycles; measure the instruction count. *)
  let t = Ispsim.create Programs.sieve in
  let instructions = Ispsim.run t in
  Alcotest.(check bool) "plausible instruction count" true
    (instructions > 500 && instructions < 5545);
  let ratio = float_of_int Programs.sieve_cycles /. float_of_int instructions in
  Alcotest.(check bool) "4-8 cycles per instruction" true (ratio > 4. && ratio < 8.)

(* The four ops the thesis never exercises, recovered by probing: both
   levels must agree on the resulting machine state. *)
let compare_op_levels label items ~cycles ~ram_window =
  let program = Asm.assemble items in
  let spec = Microcode.spec ~program () in
  let rtl =
    Asim.Compile.create ~config:Asim.Machine.quiet_config (Asim.Analysis.analyze spec)
  in
  (try Asim.Machine.run rtl ~cycles with Asim.Error.Error _ -> ());
  let isp = Ispsim.create program in
  ignore (Ispsim.run isp);
  Alcotest.(check int) (label ^ " sp") (rtl.Asim.Machine.read "sp") (Ispsim.sp isp);
  Alcotest.(check int) (label ^ " fp") (rtl.Asim.Machine.read "fp") (Ispsim.fp isp);
  for i = 0 to ram_window do
    Alcotest.(check int)
      (Printf.sprintf "%s ram[%d]" label i)
      (rtl.Asim.Machine.read_cell "ram" i)
      (Ispsim.peek isp i)
  done

let test_recovered_ops () =
  (* The probe programs simply run off the end of the ROM (both levels stop
     deterministically: the RTL traps on the program fetch, the ISP stops on
     an undecodable word), so sp/fp/ram afterwards are directly comparable. *)
  compare_op_levels "glob"
    ([ Asm.op Isa.Nop ] @ Asm.enter_frame 2 @ [ Asm.push 7; Asm.op Isa.Glob ])
    ~cycles:200 ~ram_window:8;
  compare_op_levels "index"
    ([ Asm.op Isa.Nop ] @ Asm.enter_frame 4
    @ [ Asm.push 9; Asm.push 2; Asm.op Isa.Index ])
    ~cycles:300 ~ram_window:10;
  compare_op_levels "exit"
    ([ Asm.op Isa.Nop ] @ Asm.enter_frame 2 @ [ Asm.op Isa.Exit_ ])
    ~cycles:200 ~ram_window:8;
  compare_op_levels "call"
    ([ Asm.op Isa.Nop ] @ Asm.enter_frame 2 @ [ Asm.push 20; Asm.op Isa.Call ])
    ~cycles:200 ~ram_window:8

let test_glob_absolute_addressing () =
  (* glob converts an absolute RAM address for LD: read ram[9] directly. *)
  let program =
    Asm.assemble
      (List.concat
         [
           [ Asm.op Isa.Nop ];
           Asm.enter_frame 2;
           [ Asm.push 9; Asm.op Isa.Glob; Asm.op Isa.Ld ];
           Asm.output_top;
           [ Asm.label "halt"; Asm.jmp "halt" ];
         ])
  in
  let spec = Microcode.spec ~program () in
  let analysis = Asim.Analysis.analyze spec in
  let io, events = Asim.Io.recording () in
  let m = Asim.Compile.create ~config:{ Asim.Machine.quiet_config with io } analysis in
  m.Asim.Machine.write_cell "ram" 9 777;
  Asim.Machine.run m ~cycles:300;
  let outs =
    List.filter_map
      (function Asim.Io.Output { data; _ } -> Some data | _ -> None)
      (events ())
  in
  Alcotest.(check (list int)) "absolute load" [ 777 ] outs

let test_isp_stack_inspection () =
  let t = Ispsim.create (Asm.assemble [ Asm.op Isa.Nop; Asm.push 3; Asm.push 5 ]) in
  ignore (Ispsim.run t);
  Alcotest.(check (list int)) "stack top-first" [ 5; 3 ] (Ispsim.stack t)

(* --- microarchitecture profiling --------------------------------------------- *)

module Sprofile = Asim_stackm.Profile

let test_profile_sieve () =
  let r =
    Sprofile.analyze ~cycles:Programs.sieve_cycles Programs.sieve
  in
  Alcotest.(check int) "cycles" Programs.sieve_cycles r.Sprofile.cycles;
  (* One dispatch per executed instruction; the ISP simulator counts the
     same work one abstraction level up (give or take the final partial
     instruction when the cycle budget expires). *)
  let isp = Asim_stackm.Ispsim.create Programs.sieve in
  let isp_count = Asim_stackm.Ispsim.run isp in
  Alcotest.(check bool) "dispatches ~= ISP instruction count" true
    (abs (r.Sprofile.instructions - isp_count) <= 2);
  let cpi = float_of_int r.Sprofile.cycles /. float_of_int r.Sprofile.instructions in
  Alcotest.(check bool) "CPI between 4 and 5" true (cpi > 4. && cpi < 5.);
  Alcotest.(check (option int)) "exactly one ENTER" (Some 1)
    (List.assoc_opt "enter" r.Sprofile.instruction_mix);
  Alcotest.(check bool) "fetch dominates" true
    (match r.Sprofile.label_occupancy with ("fetch", _) :: _ -> true | _ -> false);
  Alcotest.(check bool) "report renders" true
    (String.length (Sprofile.to_string r) > 100)

let test_profile_engines_agree () =
  let a = Sprofile.analyze ~engine:`Interp ~cycles:800 Programs.sieve in
  let b = Sprofile.analyze ~engine:`Compiled ~cycles:800 Programs.sieve in
  Alcotest.(check bool) "identical attribution" true (a = b)

let test_state_labels () =
  Alcotest.(check string) "fetch" "fetch" (Sprofile.state_label 0);
  Alcotest.(check string) "add entry" "add" (Sprofile.state_label 42);
  Alcotest.(check string) "enter entry" "enter" (Sprofile.state_label 52);
  Alcotest.(check string) "unused" "state-60" (Sprofile.state_label 60)

(* --- microcode structure ----------------------------------------------------- *)

let test_tables_shape () =
  Alcotest.(check int) "rom entries" 64 (Array.length Microcode.rom_table);
  Alcotest.(check int) "parm entries" 64 (Array.length Microcode.parm_table);
  Alcotest.(check int) "op entries" 16 (Array.length Microcode.op_table)

let test_spec_analyzes () =
  let spec = Microcode.spec ~program:Programs.sieve () in
  let analysis = Asim.Analysis.analyze spec in
  Alcotest.(check int) "components" 27
    (List.length analysis.Asim.Analysis.spec.Asim.Spec.components);
  Alcotest.(check int) "memories" 10 (List.length analysis.Asim.Analysis.memories);
  (* no warnings: everything declared and defined *)
  Alcotest.(check int) "warnings" 0 (List.length analysis.Asim.Analysis.warnings)

let test_engines_agree_cycle_by_cycle () =
  let spec =
    Microcode.spec
      ~traced:[ "state"; "pc"; "sp"; "ir"; "alu" ]
      ~program:Programs.sieve ()
  in
  let analysis = Asim.Analysis.analyze spec in
  let run build =
    let buf = Buffer.create 65536 in
    let config = { Asim.Machine.quiet_config with trace = Asim.Trace.buffer_sink buf } in
    let m : Asim.Machine.t = build config analysis in
    Asim.Machine.run m ~cycles:1500;
    Buffer.contents buf
  in
  let interp = run (fun config a -> Asim.Interp.create ~config a) in
  let compiled = run (fun config a -> Asim.Compile.create ~config a) in
  Alcotest.(check bool) "1500-cycle traces identical" true (interp = compiled)

let () =
  Alcotest.run "stackm"
    [
      ( "sieve",
        [
          Alcotest.test_case "interpreter" `Quick test_sieve_interp;
          Alcotest.test_case "compiled" `Quick test_sieve_compiled;
          Alcotest.test_case "cycle budget" `Quick test_sieve_needs_all_cycles;
          Alcotest.test_case "reassembled source" `Quick test_sieve_reassembled;
        ] );
      ( "programs",
        [
          Alcotest.test_case "countdown" `Quick test_countdown;
          Alcotest.test_case "countdown n=1" `Quick test_countdown_one;
          Alcotest.test_case "squares" `Quick test_squares;
          Alcotest.test_case "fibonacci" `Quick test_fibonacci;
          Alcotest.test_case "gcd" `Quick test_gcd;
          Alcotest.test_case "gcd across levels" `Quick test_gcd_all_levels;
          Alcotest.test_case "sum of inputs" `Quick test_sum_of_inputs;
        ] );
      ( "isa",
        [
          Alcotest.test_case "encode/decode round-trip" `Quick test_encode_decode_roundtrip;
          Alcotest.test_case "sizes" `Quick test_encode_sizes;
          Alcotest.test_case "bounds" `Quick test_encode_bounds;
          Alcotest.test_case "disassemble sieve" `Quick test_disassemble_sieve;
        ] );
      ( "assembler",
        [
          Alcotest.test_case "forward and backward" `Quick test_assembler_forward_backward;
          Alcotest.test_case "duplicate label" `Quick test_assembler_duplicate_label;
          Alcotest.test_case "undefined label" `Quick test_assembler_undefined_label;
          Alcotest.test_case "long branch encoding" `Quick test_assembler_long_branch;
          Alcotest.test_case "long branch runs" `Quick test_long_branch_runs;
        ] );
      ( "asm text",
        [
          Alcotest.test_case "countdown from source" `Quick test_asmtext_countdown;
          Alcotest.test_case "matches combinators" `Quick test_asmtext_matches_builder;
          Alcotest.test_case "errors" `Quick test_asmtext_errors;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_isa_roundtrip; prop_stack_programs ] );
      ( "isp level",
        [
          Alcotest.test_case "sieve" `Quick test_isp_sieve;
          Alcotest.test_case "programs" `Quick test_isp_programs;
          Alcotest.test_case "input" `Quick test_isp_input;
          Alcotest.test_case "halt detection" `Quick test_isp_halt_detection;
          Alcotest.test_case "cycles per instruction" `Quick test_isp_speed_ratio;
          Alcotest.test_case "recovered ops match RTL" `Quick test_recovered_ops;
          Alcotest.test_case "glob absolute addressing" `Quick
            test_glob_absolute_addressing;
          Alcotest.test_case "stack inspection" `Quick test_isp_stack_inspection;
        ] );
      ( "profiling",
        [
          Alcotest.test_case "sieve profile" `Quick test_profile_sieve;
          Alcotest.test_case "engines agree" `Quick test_profile_engines_agree;
          Alcotest.test_case "state labels" `Quick test_state_labels;
        ] );
      ( "microcode",
        [
          Alcotest.test_case "table shapes" `Quick test_tables_shape;
          Alcotest.test_case "spec analyzes cleanly" `Quick test_spec_analyzes;
          Alcotest.test_case "engines agree cycle-by-cycle" `Quick
            test_engines_agree_cycle_by_cycle;
        ] );
    ]
