(* Numeric literal parsing ([str2num] of Appendix C). *)

open Asim_core

let value s = Number.parse_value s

let check = Alcotest.(check int)

let test_decimal () =
  check "0" 0 (value "0");
  check "42" 42 (value "42");
  check "3048" 3048 (value "3048");
  check "leading zeros" 7 (value "007")

let test_binary () =
  check "%0" 0 (value "%0");
  check "%1" 1 (value "%1");
  check "%1011" 11 (value "%1011");
  check "%110" 6 (value "%110");
  check "long" 255 (value "%11111111")

let test_hex () =
  check "$0" 0 (value "$0");
  check "$F" 15 (value "$F");
  check "$3A" 58 (value "$3A");
  check "$5D" 93 (value "$5D");
  check "mixed digits" 2748 (value "$ABC")

let test_pow2 () =
  check "^0" 1 (value "^0");
  check "^4" 16 (value "^4");
  check "^12" 4096 (value "^12");
  check "^30" (1 lsl 30) (value "^30")

let test_sums () =
  (* The thesis's own decode-ROM entries. *)
  check "128+3+^8" 387 (value "128+3+^8");
  check "16+^5+^7+^8" (16 + 32 + 128 + 256) (value "16+^5+^7+^8");
  check "%101+2" 7 (value "%101+2");
  check "$A+%10+1" 13 (value "$A+%10+1")

let malformed s () =
  match Number.parse s with
  | exception Error.Error { phase = Error.Parsing; _ } -> ()
  | exception e -> Alcotest.failf "unexpected exception %s" (Printexc.to_string e)
  | terms -> Alcotest.failf "parsed %S as %s" s (Number.to_string terms)

let test_is_number_start () =
  Alcotest.(check bool) "digit" true (Number.is_number_start '7');
  Alcotest.(check bool) "$" true (Number.is_number_start '$');
  Alcotest.(check bool) "%" true (Number.is_number_start '%');
  Alcotest.(check bool) "^" true (Number.is_number_start '^');
  Alcotest.(check bool) "letter" false (Number.is_number_start 'a');
  Alcotest.(check bool) "#" false (Number.is_number_start '#')

let prop_roundtrip =
  let term =
    QCheck.Gen.(
      oneof
        [
          map (fun v -> Number.Decimal v) (int_bound 100000);
          map (fun v -> Number.Hex v) (int_bound 100000);
          map (fun v -> Number.Binary (v, Asim_core.Bits.width_needed v)) (int_bound 4095);
          map (fun e -> Number.Pow2 e) (int_bound 30);
        ])
  in
  let gen = QCheck.Gen.(list_size (int_range 1 4) term) in
  QCheck.Test.make ~name:"print/parse round-trip preserves value" ~count:300
    (QCheck.make ~print:Number.to_string gen)
    (fun terms ->
      Number.value (Number.parse (Number.to_string terms)) = Number.value terms)

let () =
  Alcotest.run "number"
    [
      ( "parse",
        [
          Alcotest.test_case "decimal" `Quick test_decimal;
          Alcotest.test_case "binary" `Quick test_binary;
          Alcotest.test_case "hex" `Quick test_hex;
          Alcotest.test_case "power of two" `Quick test_pow2;
          Alcotest.test_case "sums" `Quick test_sums;
          Alcotest.test_case "is_number_start" `Quick test_is_number_start;
        ] );
      ( "errors",
        [
          Alcotest.test_case "empty" `Quick (malformed "");
          Alcotest.test_case "letters" `Quick (malformed "abc");
          Alcotest.test_case "trailing plus" `Quick (malformed "1+");
          Alcotest.test_case "double plus" `Quick (malformed "1++2");
          Alcotest.test_case "bare percent" `Quick (malformed "%");
          Alcotest.test_case "bad binary digit" `Quick (malformed "%12");
          Alcotest.test_case "bare dollar" `Quick (malformed "$");
          Alcotest.test_case "lowercase hex" `Quick (malformed "$ab");
          Alcotest.test_case "bare caret" `Quick (malformed "^");
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_roundtrip ]);
    ]
