(* The Appendix F tiny computer: ISA, assembler, and instruction semantics
   verified opcode by opcode. *)

module Isa = Asim_tinyc.Isa
module Asm = Asim_tinyc.Asm
module Machine = Asim_tinyc.Machine

(* --- ISA ----------------------------------------------------------------- *)

let test_encode () =
  Alcotest.(check int) "LD 30" ((2 lsl 7) lor 30) (Isa.encode Isa.Ld 30);
  Alcotest.(check int) "ST 0" (3 lsl 7) (Isa.encode Isa.St 0);
  Alcotest.(check int) "SU 127" ((6 lsl 7) lor 127) (Isa.encode Isa.Su 127);
  Alcotest.check_raises "address range" (Invalid_argument "Isa.encode: address")
    (fun () -> ignore (Isa.encode Isa.Ld 128))

let test_decode () =
  List.iter
    (fun op ->
      match Isa.decode (Isa.encode op 77) with
      | Some (decoded, 77) when decoded = op -> ()
      | _ -> Alcotest.failf "round-trip failed for %s" (Isa.opcode_name op))
    [ Isa.Ld; Isa.St; Isa.Bb; Isa.Br; Isa.Su ];
  Alcotest.(check bool) "data word" true (Isa.decode 42 = None);
  Alcotest.(check bool) "opcode 7" true (Isa.decode (7 lsl 7) = None)

let test_disassemble () =
  Alcotest.(check string) "instruction" "BB 8" (Isa.disassemble (Isa.encode Isa.Bb 8));
  Alcotest.(check string) "data" "42" (Isa.disassemble 42)

(* --- assembler -------------------------------------------------------------- *)

let test_assemble_labels () =
  let image =
    Asm.assemble [ Asm.label "start"; Asm.br "start"; Asm.org 10; Asm.word 7 ]
  in
  Alcotest.(check int) "br start" (Isa.encode Isa.Br 0) image.(0);
  Alcotest.(check int) "data at 10" 7 image.(10)

let asm_error lines =
  match Asm.assemble lines with
  | exception Asim.Error.Error _ -> ()
  | _ -> Alcotest.fail "expected assembler error"

let test_assemble_errors () =
  asm_error [ Asm.label "x"; Asm.label "x" ];
  asm_error [ Asm.br "ghost" ];
  asm_error [ Asm.org 200 ];
  asm_error [ Asm.word 1; Asm.org 0; Asm.word 2 ] (* overlap *)

(* --- instruction semantics ---------------------------------------------------- *)

(* Run a program fragment for a whole number of instructions. *)
let run_instrs lines n =
  Machine.run ~cycles:(n * Isa.cycles_per_instruction) (Asm.assemble lines)

let test_ld () =
  let obs = run_instrs [ Asm.ld "v"; Asm.org 20; Asm.label "v"; Asm.word 123 ] 1 in
  Alcotest.(check int) "accumulator loaded" 123 obs.Machine.ac

let test_st () =
  let obs =
    run_instrs
      [ Asm.ld "a"; Asm.st "b"; Asm.org 20; Asm.label "a"; Asm.word 9;
        Asm.label "b"; Asm.word 0 ]
      2
  in
  Alcotest.(check int) "stored" 9 obs.Machine.memory.(21)

let test_su_positive () =
  let obs =
    run_instrs
      [ Asm.ld "a"; Asm.su "b"; Asm.org 20; Asm.label "a"; Asm.word 9;
        Asm.label "b"; Asm.word 4 ]
      2
  in
  Alcotest.(check int) "difference" 5 obs.Machine.ac;
  Alcotest.(check int) "no borrow" 0 obs.Machine.borrow

let test_su_borrow () =
  let obs =
    run_instrs
      [ Asm.ld "a"; Asm.su "b"; Asm.org 20; Asm.label "a"; Asm.word 4;
        Asm.label "b"; Asm.word 9 ]
      2
  in
  (* 4 - 9 in the 11-bit accumulator is 2043; the borrow flag latches. *)
  Alcotest.(check int) "wrapped difference" 2043 obs.Machine.ac;
  Alcotest.(check int) "borrow set" 1 obs.Machine.borrow

let test_borrow_clears () =
  let obs =
    run_instrs
      [ Asm.ld "a"; Asm.su "b"; Asm.ld "a"; Asm.su "c"; Asm.org 20;
        Asm.label "a"; Asm.word 4; Asm.label "b"; Asm.word 9;
        Asm.label "c"; Asm.word 1 ]
      4
  in
  Alcotest.(check int) "second subtract clears borrow" 0 obs.Machine.borrow;
  Alcotest.(check int) "ac" 3 obs.Machine.ac

let test_br () =
  let obs =
    run_instrs [ Asm.br "target"; Asm.org 5; Asm.label "target"; Asm.br "target" ] 2
  in
  Alcotest.(check int) "pc follows branch" 5 obs.Machine.pc

let test_bb_taken () =
  let obs =
    run_instrs
      [ Asm.ld "a"; Asm.su "b"; Asm.bb "yes"; Asm.br "no"; Asm.org 10;
        Asm.label "yes"; Asm.br "yes"; Asm.org 12; Asm.label "no"; Asm.br "no";
        Asm.org 20; Asm.label "a"; Asm.word 1; Asm.label "b"; Asm.word 2 ]
      4
  in
  Alcotest.(check int) "borrow branch taken" 10 obs.Machine.pc

let test_bb_not_taken () =
  let obs =
    run_instrs
      [ Asm.ld "a"; Asm.su "b"; Asm.bb "yes"; Asm.br "no"; Asm.org 10;
        Asm.label "yes"; Asm.br "yes"; Asm.org 12; Asm.label "no"; Asm.br "no";
        Asm.org 20; Asm.label "a"; Asm.word 2; Asm.label "b"; Asm.word 1 ]
      4
  in
  Alcotest.(check int) "borrow branch skipped" 12 obs.Machine.pc

(* --- textual assembly ----------------------------------------------------------- *)

let run_instrs' image n = Machine.run ~cycles:(n * Isa.cycles_per_instruction) image

let test_asmtext () =
  let source =
    "; subtract and halt\n\
     \tLD a\n\
     \tSU b      ; comment\n\
     \tST diff\n\
     halt: BR halt\n\
     \t.org 20\n\
     a: .word 9\n\
     b: .word 4\n\
     diff: .word 0\n"
  in
  let image = Asm.assemble (Asim_tinyc.Asmtext.parse source) in
  let obs = run_instrs' image 8 in
  Alcotest.(check int) "difference stored" 5 obs.Machine.memory.(22);
  Alcotest.(check int) "spinning at halt" 3 obs.Machine.pc

let test_asmtext_errors () =
  let bad source =
    match Asim_tinyc.Asmtext.parse source with
    | exception Asim.Error.Error { phase = Asim.Error.Parsing; _ } -> ()
    | _ -> Alcotest.failf "expected parse error for %S" source
  in
  bad "FROB 3\n";
  bad "LD\n";
  bad "LD one two\n";
  bad ".word xyz\n"

(* --- demo program -------------------------------------------------------------- *)

let test_demo () =
  let obs = Machine.run Machine.demo_image in
  (* 10 - 3 stored, counted down past zero: memory holds -1 (11-bit 2047),
     borrow halted the loop at the spin instruction. *)
  Alcotest.(check int) "halt address" 8 obs.Machine.pc;
  Alcotest.(check int) "borrow" 1 obs.Machine.borrow;
  Alcotest.(check int) "counted past zero" 2047 obs.Machine.memory.(31);
  Alcotest.(check int) "operands intact" 10 obs.Machine.memory.(28)

let test_isp_matches_rtl () =
  (* Instruction-level and register-transfer simulations of the demo must
     land in the same architectural state. *)
  let isp = Asim_tinyc.Ispsim.create Machine.demo_image in
  ignore (Asim_tinyc.Ispsim.run isp);
  let isp_obs = Asim_tinyc.Ispsim.observe isp in
  let rtl_obs = Machine.run Machine.demo_image in
  Alcotest.(check int) "pc" rtl_obs.Machine.pc isp_obs.Machine.pc;
  Alcotest.(check int) "ac" rtl_obs.Machine.ac isp_obs.Machine.ac;
  Alcotest.(check int) "borrow" rtl_obs.Machine.borrow isp_obs.Machine.borrow;
  Alcotest.(check (list int))
    "memory" (Array.to_list rtl_obs.Machine.memory)
    (Array.to_list isp_obs.Machine.memory)

let test_isp_instruction_count () =
  let isp = Asim_tinyc.Ispsim.create Machine.demo_image in
  let n = Asim_tinyc.Ispsim.run isp in
  (* 3 setup + 8 loops of 5 + the final taken BB = 44, plus the halt BR *)
  Alcotest.(check bool) "plausible count" true (n > 40 && n < 50)

let test_demo_engines_agree () =
  let interp = Machine.run ~engine:`Interp Machine.demo_image in
  let compiled = Machine.run ~engine:`Compiled Machine.demo_image in
  Alcotest.(check bool) "observations equal" true (interp = compiled)

let test_four_cycles_per_instruction () =
  (* After exactly 4 cycles, the first LD has completed. *)
  let obs = run_instrs [ Asm.ld "v"; Asm.org 20; Asm.label "v"; Asm.word 55 ] 1 in
  Alcotest.(check int) "loaded in one instruction time" 55 obs.Machine.ac;
  Alcotest.(check int) "pc advanced once" 1 obs.Machine.pc

let () =
  Alcotest.run "tinyc"
    [
      ( "isa",
        [
          Alcotest.test_case "encode" `Quick test_encode;
          Alcotest.test_case "decode" `Quick test_decode;
          Alcotest.test_case "disassemble" `Quick test_disassemble;
        ] );
      ( "assembler",
        [
          Alcotest.test_case "labels and org" `Quick test_assemble_labels;
          Alcotest.test_case "errors" `Quick test_assemble_errors;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "LD" `Quick test_ld;
          Alcotest.test_case "ST" `Quick test_st;
          Alcotest.test_case "SU positive" `Quick test_su_positive;
          Alcotest.test_case "SU borrow" `Quick test_su_borrow;
          Alcotest.test_case "borrow clears" `Quick test_borrow_clears;
          Alcotest.test_case "BR" `Quick test_br;
          Alcotest.test_case "BB taken" `Quick test_bb_taken;
          Alcotest.test_case "BB not taken" `Quick test_bb_not_taken;
          Alcotest.test_case "timing" `Quick test_four_cycles_per_instruction;
        ] );
      ( "asm text",
        [
          Alcotest.test_case "assemble and run" `Quick test_asmtext;
          Alcotest.test_case "errors" `Quick test_asmtext_errors;
        ] );
      ( "demo",
        [
          Alcotest.test_case "computation" `Quick test_demo;
          Alcotest.test_case "engines agree" `Quick test_demo_engines_agree;
        ] );
      ( "multiply",
        [
          Alcotest.test_case "7 x 3" `Quick (fun () ->
              let image = Asm.assemble (Machine.multiply_program 7 3) in
              let obs = Machine.run ~cycles:2000 image in
              Alcotest.(check int) "product" 21
                (obs.Machine.memory.(Machine.multiply_product_address) land 1023));
          Alcotest.test_case "edge cases" `Quick (fun () ->
              List.iter
                (fun (a, b) ->
                  let image = Asm.assemble (Machine.multiply_program a b) in
                  let obs = Machine.run ~cycles:12000 image in
                  Alcotest.(check int)
                    (Printf.sprintf "%d x %d" a b)
                    (a * b mod 1024)
                    (obs.Machine.memory.(Machine.multiply_product_address) land 1023))
                [ (0, 5); (5, 0); (1, 9); (31, 31); (100, 10) ]);
          Alcotest.test_case "isp agrees" `Quick (fun () ->
              let image = Asm.assemble (Machine.multiply_program 12 12) in
              let rtl = Machine.run ~cycles:6000 image in
              let isp = Asim_tinyc.Ispsim.create image in
              ignore (Asim_tinyc.Ispsim.run isp);
              let iobs = Asim_tinyc.Ispsim.observe isp in
              Alcotest.(check int) "product"
                (rtl.Machine.memory.(Machine.multiply_product_address))
                iobs.Machine.memory.(Machine.multiply_product_address));
        ] );
      ( "isp level",
        [
          Alcotest.test_case "matches RTL" `Quick test_isp_matches_rtl;
          Alcotest.test_case "instruction count" `Quick test_isp_instruction_count;
        ] );
    ]
