(* Gate-level simulation (§2.2.2): boolean networks must match the RTL
   engines cycle-for-cycle on width-masked values. *)

open Asim
module Circuit = Asim_gates.Circuit

let check_equivalence ?(cycles = 24) label analysis =
  let rtl = Compile.create ~config:Machine.quiet_config analysis in
  let gates = Circuit.of_analysis analysis in
  let names =
    List.map (fun (c : Component.t) -> c.name) analysis.Analysis.spec.Spec.components
  in
  for cyc = 1 to cycles do
    Machine.run rtl ~cycles:1;
    Circuit.step gates;
    List.iter
      (fun name ->
        let w = max 1 (min 31 (Circuit.width gates name)) in
        let expected = rtl.Machine.read name land Bits.ones w in
        let got = Circuit.read gates name in
        if expected <> got then
          Alcotest.failf "%s: cycle %d, %s: rtl=%d gate=%d (width %d)" label cyc
            name expected got w)
      names
  done

let spec_test name source cycles () =
  check_equivalence ~cycles name (load_string source)

let test_tiny_computer () =
  check_equivalence ~cycles:Asim_tinyc.Machine.demo_cycles "tiny computer"
    (Analysis.analyze
       (Asim_tinyc.Machine.spec ~program:Asim_tinyc.Machine.demo_image ()))

let test_stack_machine () =
  check_equivalence ~cycles:800 "stack machine"
    (Analysis.analyze
       (Asim_stackm.Microcode.spec ~program:Asim_stackm.Programs.sieve ()))

let test_gate_level_sieve () =
  (* The boolean network runs the thesis's flagship workload end to end. *)
  let analysis =
    Analysis.analyze (Asim_stackm.Microcode.spec ~program:Asim_stackm.Programs.sieve ())
  in
  let io, events = Io.recording () in
  let gates = Circuit.of_analysis ~io analysis in
  Circuit.run gates ~cycles:Asim_stackm.Programs.sieve_cycles;
  let outs =
    List.filter_map
      (function Io.Output { data; _ } -> Some data | Io.Input _ -> None)
      (events ())
  in
  Alcotest.(check (list int))
    "primes from gates" Asim_stackm.Programs.sieve_expected_primes outs

let test_stats_and_describe () =
  let gates = Circuit.of_analysis (load_string Specs.counter) in
  let s = Circuit.stats gates in
  Alcotest.(check bool) "has gates" true (s.Circuit.gate_count > 0);
  Alcotest.(check int) "31 flip-flops for the counter register" 31 s.Circuit.dff_count;
  Alcotest.(check int) "no macros needed" 0 s.Circuit.macro_count;
  let d = Circuit.describe gates in
  Alcotest.(check bool) "describes the register" true
    (String.length d > 0)

let test_macro_fallbacks () =
  (* A computed ALU function and a multi-cell RAM must fall back to
     behavioral macros, per the thesis's mixed-level stance (§2.2.3.1). *)
  let source =
    "#m\nc inc dyn ram .\nA inc 4 c 1\nA dyn c.0.3 6 3\nM ram c.0.1 c 1 4\nM c 0 inc 1 1\n.\n"
  in
  let gates = Circuit.of_analysis (load_string source) in
  let s = Circuit.stats gates in
  Alcotest.(check bool) "macros present" true (s.Circuit.macro_count >= 2);
  check_equivalence ~cycles:12 "macro fallback" (load_string source)

let test_update_order_hazard_rejected () =
  let source = "#m\na b .\nM a 0 b 1 1\nM b 0 a 1 1\n.\n" in
  match Circuit.of_analysis (load_string source) with
  | exception Error.Error { phase = Error.Analysis; _ } -> ()
  | _ -> Alcotest.fail "expected gate-level rejection of the update-order hazard"

let test_width_reporting () =
  let gates = Circuit.of_analysis (load_string Specs.gray_code) in
  Alcotest.(check int) "gray is 4 bits" 4 (Circuit.width gates "gray");
  Alcotest.(check bool) "unknown name" true
    (match Circuit.read gates "nonexistent" with
    | exception Error.Error _ -> true
    | _ -> false)

let test_adder_subtractor_bits () =
  (* Direct check of the ripple-carry lowerings on a little ALU spec. *)
  let source =
    "#m\nsum diff a b .\nA sum 4 a.0.7 b.0.7\nA diff 5 a.0.7 b.0.7\n\
     M a 0 sum.0.7 1 1\nM b 0 17 1 1\n.\n"
  in
  check_equivalence ~cycles:16 "adder/subtractor" (load_string source)

let () =
  Alcotest.run "gates"
    [
      ( "equivalence",
        [
          Alcotest.test_case "counter" `Quick (spec_test "counter" Specs.counter 24);
          Alcotest.test_case "gray code" `Quick (spec_test "gray" Specs.gray_code 20);
          Alcotest.test_case "divider" `Quick (spec_test "divider" Specs.divider 20);
          Alcotest.test_case "traffic light" `Quick
            (spec_test "traffic" Specs.traffic_light 40);
          Alcotest.test_case "multiplier" `Quick
            (spec_test "multiplier" Specs.multiplier 16);
          Alcotest.test_case "modular divider" `Quick
            (spec_test "divider-modular" Specs.divider_modular 16);
          Alcotest.test_case "seven segment" `Quick
            (spec_test "seven-segment" Specs.seven_segment 16);
          Alcotest.test_case "pwm" `Quick (spec_test "pwm" Specs.pwm 32);
          Alcotest.test_case "shifter" `Quick (spec_test "shifter" Specs.shifter 20);
          Alcotest.test_case "tiny computer" `Quick test_tiny_computer;
          Alcotest.test_case "stack machine (800 cycles)" `Quick test_stack_machine;
          Alcotest.test_case "adder/subtractor" `Quick test_adder_subtractor_bits;
        ] );
      ( "workloads",
        [ Alcotest.test_case "sieve end-to-end" `Slow test_gate_level_sieve ] );
      ( "structure",
        [
          Alcotest.test_case "stats and describe" `Quick test_stats_and_describe;
          Alcotest.test_case "macro fallbacks" `Quick test_macro_fallbacks;
          Alcotest.test_case "hazard rejected" `Quick test_update_order_hazard_rejected;
          Alcotest.test_case "width reporting" `Quick test_width_reporting;
        ] );
    ]
