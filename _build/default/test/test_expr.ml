(* Expression semantics: concatenation, bit fields, widths, evaluation.
   Includes the Figure 3.1 example. *)

open Asim_core
module Parser = Asim_syntax.Parser

let e = Parser.parse_expr

let eval env expr = Expr.eval ~read:(fun name -> List.assoc name env) expr

let check = Alcotest.(check int)

(* Figure 3.1: mem.3.4,#01,count.1 concatenates bits 3..4 of mem, the
   literal 01, and bit 1 of count. *)
let test_figure_3_1 () =
  let expr = e "mem.3.4,#01,count.1" in
  check "width" 5 (Expr.width expr);
  (* mem = ...11 at bits 3..4; count bit 1 set -> 11 01 1 = 27 *)
  check "value" 27 (eval [ ("mem", 0b11000); ("count", 0b10) ] expr);
  (* with everything else zero, the literal alone contributes 01 at bit 1 *)
  check "literal only" 2 (eval [ ("mem", 0); ("count", 0) ] expr)

let test_atoms () =
  check "plain ref" 42 (eval [ ("x", 42) ] (e "x"));
  check "single bit" 1 (eval [ ("x", 8) ] (e "x.3"));
  check "range" 5 (eval [ ("x", 0b101000) ] (e "x.3.5"));
  check "const" 3048 (eval [] (e "3048"));
  check "const sum" 387 (eval [] (e "128+3+^8"));
  check "bitstring" 6 (eval [] (e "#110"));
  check "widthed const keeps low bits" 5 (eval [] (e "21.4"));
  check "hex in field position" 1 (eval [ ("x", 2) ] (e "x.%1"))

let test_concat_order () =
  (* Leftmost atom is most significant. *)
  check "two bits" 0b10 (eval [ ("a", 1); ("b", 0) ] (e "a.0,b.0"));
  check "literal then bit" 0b101 (eval [ ("x", 1) ] (e "#10,x.0"));
  check "nibbles" 0xAB (eval [ ("h", 0xA); ("l", 0xB) ] (e "h.0.3,l.0.3"));
  (* A filling atom may only be leftmost; it occupies the rest. *)
  check "filling leftmost" ((7 lsl 2) lor 1) (eval [ ("x", 7) ] (e "x,#01"))

let test_widths () =
  check "bit" 1 (Expr.width (e "x.7"));
  check "range" 12 (Expr.width (e "x.0.11"));
  check "bitstring" 4 (Expr.width (e "#0000"));
  check "plain ref fills" 31 (Expr.width (e "x"));
  check "const fills" 31 (Expr.width (e "5"));
  check "widthed const" 4 (Expr.width (e "5.4"));
  check "mixed" 31 (Expr.width (e "x,#01"))

let analysis_error f =
  match f () with
  | exception Error.Error { phase = Error.Analysis; _ } -> ()
  | _ -> Alcotest.fail "expected an analysis error"

let test_width_errors () =
  analysis_error (fun () -> Expr.width (e "x.0.15,y.0.15,z.0.3"));
  analysis_error (fun () -> Expr.width (e "#01,x"));
  analysis_error (fun () -> Expr.width (e "x.5.2"));
  analysis_error (fun () -> Expr.width (e "x.40"))

let test_names () =
  Alcotest.(check (list string))
    "order, no duplicates" [ "b"; "a"; "c" ]
    (Expr.names (e "b.1,a.2,b.3,c.0,#01"))

let test_numeric () =
  Alcotest.(check bool) "consts" true (Expr.is_numeric (e "12,#01"));
  Alcotest.(check bool) "with ref" false (Expr.is_numeric (e "12,x.0"));
  Alcotest.(check (option int)) "const value" (Some 49) (Expr.const_value (e "#11,1.4"));
  Alcotest.(check (option int)) "not const" None (Expr.const_value (e "x"))

let test_to_string_roundtrip () =
  List.iter
    (fun src ->
      let expr = e src in
      let printed = Expr.to_string expr in
      Alcotest.(check string)
        (Printf.sprintf "round-trip %s" src)
        printed
        (Expr.to_string (e printed)))
    [ "mem.3.4,#01,count.1"; "128+3+^8"; "x"; "x.0.11,y.0.3"; "%110,rom.8"; "5.4" ]

let test_negative_values () =
  (* Bit extraction on negative values uses two's complement, matching
     Pascal's set-based land. *)
  check "low bits of -5" 4091 (eval [ ("x", -5) ] (e "x.0.11"));
  check "bit of negative" 1 (eval [ ("x", -1) ] (e "x.12"))

(* Property: width of a concatenation is the sum of the field widths. *)
let field_gen =
  QCheck.Gen.(
    let* lo = int_bound 27 in
    let* len = int_range 1 3 in
    return (Expr.ref_range "x" lo (lo + len - 1)))

let prop_concat_width =
  let gen = QCheck.Gen.(list_size (int_range 1 6) field_gen) in
  let arbitrary = QCheck.make ~print:(fun a -> Expr.to_string a) gen in
  QCheck.Test.make ~name:"concat width = sum of field widths" ~count:200 arbitrary
    (fun atoms ->
      let sum =
        List.fold_left
          (fun acc a -> acc + Option.get (Expr.atom_width a))
          0 atoms
      in
      QCheck.assume (sum <= Bits.word_bits);
      Expr.width atoms = sum)

(* Property: evaluation distributes field extraction correctly. *)
let prop_two_field_eval =
  let gen =
    QCheck.Gen.(
      let* v = int_bound Bits.mask in
      let* lo1 = int_bound 10 in
      let* hi1 = int_range lo1 (lo1 + 5) in
      let* lo2 = int_bound 10 in
      let* hi2 = int_range lo2 (lo2 + 5) in
      return (v, (lo1, hi1), (lo2, hi2)))
  in
  QCheck.Test.make ~name:"a.f1,a.f2 = (extract f1 << w2) + extract f2" ~count:300
    (QCheck.make gen)
    (fun (v, (lo1, hi1), (lo2, hi2)) ->
      let expr = [ Expr.ref_range "a" lo1 hi1; Expr.ref_range "a" lo2 hi2 ] in
      let w2 = hi2 - lo2 + 1 in
      Expr.eval ~read:(fun _ -> v) expr
      = (Bits.extract v ~lo:lo1 ~hi:hi1 lsl w2) + Bits.extract v ~lo:lo2 ~hi:hi2)

let () =
  Alcotest.run "expr"
    [
      ( "semantics",
        [
          Alcotest.test_case "figure 3.1" `Quick test_figure_3_1;
          Alcotest.test_case "atoms" `Quick test_atoms;
          Alcotest.test_case "concatenation order" `Quick test_concat_order;
          Alcotest.test_case "widths" `Quick test_widths;
          Alcotest.test_case "width errors" `Quick test_width_errors;
          Alcotest.test_case "names" `Quick test_names;
          Alcotest.test_case "numeric detection" `Quick test_numeric;
          Alcotest.test_case "to_string round-trip" `Quick test_to_string_roundtrip;
          Alcotest.test_case "negative values" `Quick test_negative_values;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_concat_width; prop_two_field_eval ]
      );
    ]
