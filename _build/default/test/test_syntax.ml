(* Lexer, macro expansion, and parser tests (Appendix A/B language). *)

open Asim_core
module Lexer = Asim_syntax.Lexer
module Macro = Asim_syntax.Macro
module Parser = Asim_syntax.Parser

let texts tokens = List.map (fun t -> t.Lexer.text) tokens

(* --- lexer ---------------------------------------------------------------- *)

let test_comment_line () =
  let comment, tokens = Lexer.tokenize "# hello world\na b .\n" in
  Alcotest.(check string) "comment" " hello world" comment;
  Alcotest.(check (list string)) "tokens" [ "a"; "b"; "." ] (texts tokens)

let test_comment_required () =
  match Lexer.tokenize "a b ." with
  | exception Error.Error { phase = Error.Lexing; _ } -> ()
  | _ -> Alcotest.fail "expected 'Comment required.'"

let test_braces_are_whitespace () =
  let _, tokens = Lexer.tokenize "#c\nfoo{a comment}bar {x} baz\n" in
  Alcotest.(check (list string)) "tokens" [ "foo"; "bar"; "baz" ] (texts tokens)

let test_unterminated_comment () =
  match Lexer.tokenize "#c\nfoo {never closed" with
  | exception Error.Error { phase = Error.Lexing; _ } -> ()
  | _ -> Alcotest.fail "expected unterminated-comment error"

let test_trailing_period_splits () =
  let _, tokens = Lexer.tokenize "#c\n4096.\n" in
  Alcotest.(check (list string)) "split" [ "4096"; "." ] (texts tokens);
  let _, tokens = Lexer.tokenize "#c\n.\n" in
  Alcotest.(check (list string)) "lone period intact" [ "." ] (texts tokens);
  (* An interior period stays put: only the trailing one splits. *)
  let _, tokens = Lexer.tokenize "#c\nmem.3.4\n" in
  Alcotest.(check (list string)) "interior" [ "mem.3.4" ] (texts tokens)

let test_positions () =
  let _, tokens = Lexer.tokenize "#c\n ab\n  cd\n" in
  match tokens with
  | [ a; b ] ->
      Alcotest.(check int) "a line" 2 a.Lexer.pos.Error.line;
      Alcotest.(check int) "a col" 2 a.Lexer.pos.Error.column;
      Alcotest.(check int) "b line" 3 b.Lexer.pos.Error.line;
      Alcotest.(check int) "b col" 3 b.Lexer.pos.Error.column
  | _ -> Alcotest.fail "token count"

(* --- macros ---------------------------------------------------------------- *)

let expand source =
  let _, tokens = Lexer.tokenize source in
  let table, rest = Macro.consume tokens in
  texts (Macro.expand table rest)

let test_macro_basic () =
  Alcotest.(check (list string))
    "substitution" [ "A"; "x"; "4"; "left"; "right" ]
    (expand "#c\n~fn 4\nA x ~fn left right\n")

let test_macro_inside_token () =
  Alcotest.(check (list string))
    "mid-token" [ "rom.8,parm.5" ]
    (expand "#c\n~w 8\n~d 5\nrom.~w,parm.~d\n")

let test_macro_uses_earlier_macro () =
  (* Macro names extend over letters and digits, so a delimiter (here [.])
     separates the reference from the rest of the body. *)
  Alcotest.(check (list string))
    "nested" [ "foo"; "a.1" ]
    (expand "#c\n~x a\n~y ~x.1\nfoo ~y\n")

let test_macro_dash_marker () =
  Alcotest.(check (list string))
    "dash definition" [ "foo"; "5" ]
    (expand "#c\n-d 5\nfoo ~d\n")

let test_macro_undefined () =
  match expand "#c\nfoo ~nope\n" with
  | exception Error.Error { phase = Error.Parsing; _ } -> ()
  | _ -> Alcotest.fail "expected undefined-macro error"

let test_macro_duplicate () =
  match expand "#c\n~x 1\n~x 2\nfoo\n" with
  | exception Error.Error { phase = Error.Parsing; _ } -> ()
  | _ -> Alcotest.fail "expected duplicate-macro error"

(* --- parser ----------------------------------------------------------------- *)

let counter = "# counter\n= 8\ncount* inc .\nA inc 4 count 1\nM count 0 inc 1 1\n.\n"

let test_parse_counter () =
  let spec = Parser.parse_string counter in
  Alcotest.(check string) "comment" " counter" spec.Spec.comment;
  Alcotest.(check (option int)) "cycles" (Some 8) spec.Spec.cycles;
  Alcotest.(check (list string)) "traced" [ "count" ] (Spec.traced_names spec);
  Alcotest.(check int) "components" 2 (List.length spec.Spec.components);
  match (Spec.find_exn spec "inc").kind with
  | Component.Alu { fn; _ } ->
      Alcotest.(check (option int)) "fn" (Some 4) (Expr.const_value fn)
  | _ -> Alcotest.fail "inc should be an ALU"

let test_parse_selector_termination () =
  let spec =
    Parser.parse_string
      "#c\ns t x .\nS s x 1 2 3\nA x 1 0 1\nM t 0 s 1 1\n.\n"
  in
  match (Spec.find_exn spec "s").kind with
  | Component.Selector { cases; _ } -> Alcotest.(check int) "cases" 3 (Array.length cases)
  | _ -> Alcotest.fail "selector expected"

let test_parse_memory_init () =
  let spec = Parser.parse_string "#c\nm .\nM m 0 0 0 -4 12 34 56 78\n.\n" in
  match (Spec.find_exn spec "m").kind with
  | Component.Memory { cells; init = Some init; _ } ->
      Alcotest.(check int) "cells" 4 cells;
      Alcotest.(check (list int)) "values" [ 12; 34; 56; 78 ] (Array.to_list init)
  | _ -> Alcotest.fail "memory with init expected"

let parse_error source =
  match Parser.parse_string source with
  | exception Error.Error { phase = Error.Parsing | Error.Analysis; _ } -> ()
  | _ -> Alcotest.failf "expected a parse error for %S" source

let test_parse_errors () =
  parse_error "#c\nx .\nQ x 1 2 3\n.\n";
  (* component expected *)
  parse_error "#c\nx .\nA x 1 2\n.\n";
  (* missing operand: '.' consumed as expr -> malformed *)
  parse_error "#c\nx .\nM x 0 0 0 -2 7\n.\n";
  (* not enough initializers *)
  parse_error "#c\n1bad .\nA 1bad 1 0 0\n.\n";
  (* invalid name *)
  parse_error "#c\nx .\nA x 1 0 0\n. trailing\n";
  (* trailing tokens *)
  parse_error "#c\nx .\nS x 1\n.\n" (* selector with no values *)

let test_parse_duplicate_component () =
  parse_error "#c\nx .\nA x 1 0 0\nA x 2 0 0\n.\n"

(* Round-trip: pretty-printing a parsed spec and re-parsing it yields the
   same structure. *)
let test_roundtrip () =
  List.iter
    (fun (name, source) ->
      let spec = Parser.parse_string source in
      let printed = Asim_core.Pretty.spec spec in
      let again = Parser.parse_string printed in
      if spec <> again then Alcotest.failf "round-trip mismatch for %s" name)
    Asim.Specs.all

(* --- modules (the paragraph-5.4 extension) ------------------------------ *)

let modular_source =
  "#m\n= 16\none q0* q1* .\nA one 1 0 1\n\
   B tflip en .\nA n 10 q en\nA carry 8 q en\nM q 0 n 1 1\nE\n\
   U b0 tflip one\nU b1 tflip b0carry\n.\n"

let test_module_expansion () =
  let spec = Parser.parse_string modular_source in
  let names = List.map (fun (c : Component.t) -> c.name) spec.Spec.components in
  Alcotest.(check (list string))
    "flattened components"
    [ "one"; "b0n"; "b0carry"; "b0q"; "b1n"; "b1carry"; "b1q" ]
    names;
  (* expanded components are declared implicitly *)
  Alcotest.(check bool) "b0q declared" true
    (List.exists (fun (d : Spec.decl) -> d.Spec.name = "b0q") spec.Spec.decls)

let test_module_behaviour_matches_flat () =
  (* The modular divider must behave exactly like the hand-flattened one. *)
  let run source names =
    let analysis = Asim.load_string source in
    let machine = Asim.machine ~config:Asim.Machine.quiet_config analysis in
    List.init 16 (fun _ ->
        Asim.Machine.run machine ~cycles:1;
        List.map machine.Asim.Machine.read names)
  in
  let flat = run Asim.Specs.divider [ "d0"; "d1"; "d2" ] in
  let modular = run Asim.Specs.divider_modular [ "d0q"; "d1q"; "d2q" ] in
  Alcotest.(check bool) "sequences equal" true (flat = modular)

let test_module_nested_instantiation () =
  (* A module may instantiate a previously defined module. *)
  let source =
    "#m\nstart pairq0q .\nA start 1 0 1\n\
     B cell en .\nA n 10 q en\nM q 0 n 1 1\nE\n\
     B pair en .\nU q0 cell en\nE\n\
     U pair pair start\n.\n"
  in
  let spec = Parser.parse_string source in
  Alcotest.(check bool) "deep name exists" true (Spec.find spec "pairq0q" <> None)

let test_macros_inside_modules () =
  (* macros expand before module parsing, so bodies may use them freely *)
  let source =
    "#m\n~fn 10\n~en clk\nclk q0q .\nA clk 1 0 1\n\
     B cell ~en .\nA n ~fn q ~en\nM q 0 n 1 1\nE\nU q0 cell ~en\n.\n"
  in
  let spec = Parser.parse_string source in
  Alcotest.(check bool) "expanded internal exists" true (Spec.find spec "q0q" <> None);
  match (Spec.find_exn spec "q0n").kind with
  | Component.Alu { fn; _ } ->
      Alcotest.(check (option int)) "macro function" (Some 10) (Expr.const_value fn)
  | _ -> Alcotest.fail "alu expected"

let test_fmt_flattens_modules () =
  let spec = Parser.parse_string modular_source in
  let printed = Asim_core.Pretty.spec spec in
  (* the canonical form contains no module constructs, only expansions *)
  let contains needle =
    let nl = String.length needle and hl = String.length printed in
    let rec go i = i + nl <= hl && (String.sub printed i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "no B form" false (contains "\nB ");
  Alcotest.(check bool) "no U form" false (contains "\nU ");
  Alcotest.(check bool) "expanded component present" true (contains "M b0q 0 b0n 1 1")

let test_module_errors () =
  (* arity: U i m with no actual -> '.' consumed as name -> error *)
  parse_error "#m\nx .\nB m p .\nA a 1 0 1\nE\nU i m\n.\n";
  parse_error "#m\nx .\nU i ghost x\n.\n";
  (* unknown module *)
  parse_error "#m\nx .\nB m p .\nA a 1 0 ghost\nE\n.\n";
  (* free name that is neither port nor internal *)
  parse_error "#m\nx .\nB m p .\nB n q .\nE\nE\n.\n";
  (* nested definition *)
  parse_error "#m\nx .\nE\n.\n";
  (* E without B *)
  parse_error "#m\nx .\nB m p .\nA a 1 0 1\nE\nB m p .\nE\n.\n";
  (* duplicate module *)
  parse_error "#m\nx .\nB m p .\nA p 1 0 1\nE\n.\n"
(* port shadows internal *)

let test_parse_file () =
  let path = Filename.temp_file "asim-test" ".asim" in
  let oc = open_out path in
  output_string oc counter;
  close_out oc;
  let spec = Parser.parse_file path in
  Sys.remove path;
  Alcotest.(check int) "components" 2 (List.length spec.Spec.components)

let () =
  Alcotest.run "syntax"
    [
      ( "lexer",
        [
          Alcotest.test_case "comment line" `Quick test_comment_line;
          Alcotest.test_case "comment required" `Quick test_comment_required;
          Alcotest.test_case "braces are whitespace" `Quick test_braces_are_whitespace;
          Alcotest.test_case "unterminated comment" `Quick test_unterminated_comment;
          Alcotest.test_case "trailing period" `Quick test_trailing_period_splits;
          Alcotest.test_case "positions" `Quick test_positions;
        ] );
      ( "macros",
        [
          Alcotest.test_case "basic" `Quick test_macro_basic;
          Alcotest.test_case "inside token" `Quick test_macro_inside_token;
          Alcotest.test_case "nested" `Quick test_macro_uses_earlier_macro;
          Alcotest.test_case "dash marker" `Quick test_macro_dash_marker;
          Alcotest.test_case "undefined" `Quick test_macro_undefined;
          Alcotest.test_case "duplicate" `Quick test_macro_duplicate;
        ] );
      ( "parser",
        [
          Alcotest.test_case "counter" `Quick test_parse_counter;
          Alcotest.test_case "selector termination" `Quick test_parse_selector_termination;
          Alcotest.test_case "memory init" `Quick test_parse_memory_init;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "duplicate component" `Quick test_parse_duplicate_component;
          Alcotest.test_case "round-trip" `Quick test_roundtrip;
          Alcotest.test_case "parse_file" `Quick test_parse_file;
        ] );
      ( "modules",
        [
          Alcotest.test_case "expansion" `Quick test_module_expansion;
          Alcotest.test_case "behaviour matches flat" `Quick
            test_module_behaviour_matches_flat;
          Alcotest.test_case "nested instantiation" `Quick
            test_module_nested_instantiation;
          Alcotest.test_case "macros inside modules" `Quick test_macros_inside_modules;
          Alcotest.test_case "fmt flattens" `Quick test_fmt_flattens_modules;
          Alcotest.test_case "errors" `Quick test_module_errors;
        ] );
    ]
