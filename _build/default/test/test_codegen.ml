(* Source backends: Figure 4.x shapes, §4.4 optimizations, expression
   rendering in all three languages. *)

open Asim
module Codegen = Asim_codegen.Codegen
module Pascal = Asim_codegen.Pascal
module Ocaml_gen = Asim_codegen.Ocaml_gen
module C_gen = Asim_codegen.C_gen
module Lower = Asim_codegen.Lower

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let check_contains label text needle =
  if not (contains text needle) then
    Alcotest.failf "%s: expected to find %S in:\n%s" label needle text

let check_absent label text needle =
  if contains text needle then Alcotest.failf "%s: did not expect %S" label needle

let fig41 =
  "# fig 4.1\nalu add compute left .\n\
   A alu compute left 3048\nA add 4 left 3048\n\
   A compute 1 0 7\nA left 1 0 1\n.\n"

(* Figure 4.1: a constant-function ALU is inlined; a computed function goes
   through the generic dologic. *)
let test_fig41_pascal () =
  let code = Pascal.generate (load_string fig41) in
  check_contains "generic alu" code "ljbalu := dologic(ljbcompute, ljbleft, 3048);";
  check_contains "optimized add" code "ljbadd := ljbleft + 3048;";
  check_absent "add does not call dologic" code "ljbadd := dologic"

(* Figure 4.2: a selector becomes a case statement. *)
let fig42 =
  "# fig 4.2\nselector index v0 v1 v2 v3 .\n\
   S selector index v0 v1 v2 v3\n\
   A index 1 0 2\nA v0 1 0 10\nA v1 1 0 11\nA v2 1 0 12\nA v3 1 0 13\n.\n"

let test_fig42_pascal () =
  let code = Pascal.generate (load_string fig42) in
  check_contains "case header" code "case ljbindex of";
  check_contains "case 0" code "0: ljbselector := ljbv0;";
  check_contains "case 3" code "3: ljbselector := ljbv3;"

(* Figure 4.3: memory initialization, operation dispatch, trace lines. *)
let fig43 =
  "# fig 4.3\nmemory address data operation .\n\
   M memory address data operation -4 12 34 56 78\n\
   A address 1 0 1\nA data 1 0 99\nA operation 1 0 13\n.\n"

let test_fig43_pascal () =
  let code = Pascal.generate (load_string fig43) in
  check_contains "init 0" code "ljbmemory[0] := 12;";
  check_contains "init 3" code "ljbmemory[3] := 78;";
  check_contains "case dispatch" code "case land(opnmemory, 3) of";
  check_contains "write arm" code "ljbmemory[adrmemory] := tempmemory;";
  check_contains "input arm" code "tempmemory := sinput(adrmemory);";
  check_contains "output arm" code "soutput(adrmemory, tempmemory);";
  check_contains "runtime write trace" code "if land(opnmemory, 5) = 5 then";
  check_contains "runtime read trace" code "if land(opnmemory, 9) = 8 then"

let test_constant_memory_op_is_specialized () =
  (* m is traced, so its temporary is kept; the constant op still removes
     the case dispatch (§4.4). *)
  let source = "# m\nc inc m* .\nA inc 4 c 1\nM m 0 c 1 1\nM c 0 inc 1 1\n.\n" in
  let code = Pascal.generate (load_string source) in
  check_absent "no case for constant op" code "case land(opnm, 3)";
  check_contains "direct write" code "ljbm[adrm] := tempm;"

(* §5.4: "heuristics to determine which memories do not need temporary
   variables" — an unreferenced, untraced memory loses its temp. *)
let test_temp_elision () =
  let source = "# m\nc inc m .\nA inc 4 c 1\nM m 0 c 1 1\nM c 0 inc 1 1\n.\n" in
  let analysis = load_string source in
  Alcotest.(check bool) "m output unused" false
    (Analysis.memory_output_used analysis "m");
  Alcotest.(check bool) "c output used" true
    (Analysis.memory_output_used analysis "c");
  let pascal = Pascal.generate analysis in
  check_absent "pascal: no temp variable" pascal "tempm";
  check_contains "pascal: direct store" pascal "ljbm[adrm] := tempc;";
  let ocaml = Ocaml_gen.generate analysis in
  check_absent "ocaml: no temp ref" ocaml "tempm";
  check_contains "ocaml: direct store" ocaml "memm.(!adrm) <- !tempc;";
  let c = C_gen.generate analysis in
  check_absent "c: no temp variable" c "tempm";
  check_contains "c: direct store" c "memm[adrm] = tempc;"

let test_temp_kept_when_traced () =
  (* Trace bits on the operation force the temporary to stay. *)
  let source = "# m\nc inc m .\nA inc 4 c 1\nM m 0 c 5 1\nM c 0 inc 1 1\n.\n" in
  let analysis = load_string source in
  Alcotest.(check bool) "trace lines read the temp" true
    (Analysis.memory_output_used analysis "m");
  check_contains "temp kept" (Pascal.generate analysis) "tempm :="

let test_traced_components_in_pascal () =
  let code = Pascal.generate (load_string Specs.counter) in
  check_contains "cycle write" code "write('Cycle ', cyclecount:3);";
  check_contains "traced value" code "write(' count= ', tempcount:1);";
  check_contains "newline" code "writeln;"

(* Expression rendering across backends (the Figure 3.1 concatenation). *)
let concat = Parser.parse_expr "mem.3.4,#01,count.1"

let test_expression_pascal () =
  Alcotest.(check string)
    "pascal" "land(tempmem, 24) + land(ljbcount, 2) div 2 + 2"
    (Pascal.expression ~memories:[ "mem" ] concat)

let test_expression_ocaml () =
  Alcotest.(check string)
    "ocaml" "((!tempmem land 24) + ((!ljbcount land 2) lsr 1) + 2)"
    (Ocaml_gen.expression ~memories:[ "mem" ] concat)

let test_expression_c () =
  Alcotest.(check string)
    "c" "((tempmem & 24LL) + ((ljbcount & 2LL) >> 1) + 2LL)"
    (C_gen.expression ~memories:[ "mem" ] concat)

let test_expression_shift_down () =
  Alcotest.(check string)
    "field above position shifts right" "land(ljbrom, 4096) div 4096"
    (Pascal.expression (Parser.parse_expr "rom.12"))

let test_expression_whole () =
  Alcotest.(check string) "whole ref" "ljbx" (Pascal.expression (Parser.parse_expr "x"));
  Alcotest.(check string) "constant" "387" (Pascal.expression (Parser.parse_expr "128+3+^8"))

(* The lowering itself. *)
let test_lower_terms () =
  match Lower.lower concat with
  | [ Lower.Field f1; Lower.Field f2; Lower.Const 2 ] ->
      Alcotest.(check string) "first" "mem" f1.name;
      Alcotest.(check (option int)) "mask1" (Some 24) f1.mask;
      Alcotest.(check int) "shift1" 0 f1.shift;
      Alcotest.(check string) "second" "count" f2.name;
      Alcotest.(check int) "shift2" (-1) f2.shift
  | terms -> Alcotest.failf "unexpected lowering (%d terms)" (List.length terms)

let test_lower_constant_folding () =
  match Lower.lower (Parser.parse_expr "#11,1.4") with
  | [ Lower.Const 49 ] -> ()
  | _ -> Alcotest.fail "constants should fold to one term"

(* Shape checks on the other backends (full compile-and-run is exercised in
   test_pipeline). *)
let test_ocaml_backend_shape () =
  let code = Ocaml_gen.generate (load_string Specs.counter) in
  check_contains "prelude" code "let dologic funct left right =";
  check_contains "state" code "let tempcount = ref 0";
  check_contains "loop" code "for cyclecount = 0 to cycles - 1 do";
  check_contains "assignment" code "ljbinc := !tempcount + 1;";
  check_contains "latch" code "memcount.(!adrcount) <- !tempcount;"

let test_c_backend_shape () =
  let code = C_gen.generate (load_string Specs.counter) in
  check_contains "include" code "#include <stdio.h>";
  check_contains "state" code "static long long memcount[1];";
  check_contains "assignment" code "ljbinc = tempcount + 1LL;";
  check_contains "loop" code
    "for (long long cyclecount = 0; cyclecount < cycles; cyclecount++)"

(* Generating Pascal for the stack machine must reproduce, byte for byte,
   characteristic statements of the thesis's own generated simulator
   (Appendix E). *)
let test_appendix_e_fidelity () =
  let analysis =
    Asim.Analysis.analyze
      (Asim_stackm.Microcode.spec ~program:Asim_stackm.Programs.sieve ())
  in
  let code = Pascal.generate analysis in
  List.iter
    (fun line -> check_contains "appendix E line" code line)
    [
      (* the condition unit, exactly as printed in Appendix E *)
      "ljbexit := dologic(land(ljbrom, 256) div 256 + 12, tempram, land(ljbrom, 256) * 16);";
      "ljbnewpc := ljbrelpc + ljboffset;";
      "ljbafp := tempfp + templeft;";
      "ljbneg := 0 - tempram;";
      "case land(tempstate, 63) of";
      "case land(tempir, 15) of";
      "case land(tempir, 1) of";
      "case land(ljbrom, 1024) div 1024 of";
      "case land(ljbrom, 512) div 512 of";
      "case land(ljbrom, 7) of";
      "case land(ljbparm, 224) div 32 of";
      "ljbwrite := land(tempram, 4095) * 16 + land(tempdata, 15);";
      "adrram := land(ljbaddr, 4095);";
      "tempprog := ljbprog[adrprog];";
    ]

let test_verilog_shape () =
  let code = Asim_codegen.Verilog.generate (load_string Specs.counter) in
  check_contains "module" code "module asim_machine (";
  check_contains "clock" code "input wire clk";
  check_contains "traced port" code "output wire [30:0] count_out";
  check_contains "register array" code "reg [30:0] count_mem [0:0];";
  check_contains "comb block" code "inc = count_q + 1'd1;";
  check_contains "clocked update" code "always @(posedge clk) begin : update_count";
  check_absent "no io ports for a write-only register" code "count_io_rdata"

let test_verilog_expression () =
  Alcotest.(check string)
    "figure 3.1 concatenation" "{mem_q[4:3], 2'b01, count[1]}"
    (Asim_codegen.Verilog.expression ~memories:[ "mem" ] concat);
  Alcotest.(check string)
    "single atom, no braces" "rom[12]"
    (Asim_codegen.Verilog.expression (Parser.parse_expr "rom.12"))

let test_verilog_selector_and_io () =
  let source = "#v\nc inc s out .\nA inc 4 c 1\nS s c.0 5 9\nM out 2 s 3 1\nM c 0 inc 1 1\n.\n" in
  let code = Asim_codegen.Verilog.generate (load_string source) in
  check_contains "selector case" code "case (c_q[0])";
  check_contains "case arm" code "31'd1: s = 4'd9;";
  check_contains "default x" code "default: s = 31'bx;";
  check_contains "io write strobe" code "assign out_io_write = (out_op[1:0] == 2'd3);";
  check_contains "io address" code "assign out_io_addr = out_addr;"

let test_verilog_dologic_only_when_needed () =
  let without = Asim_codegen.Verilog.generate (load_string Specs.counter) in
  check_absent "no dologic for constant functions" without "function [30:0] dologic";
  let with_dyn =
    Asim_codegen.Verilog.generate
      (load_string "#v\nd a .\nA d a.0.3 6 3\nM a 0 d 1 1\n.\n")
  in
  check_contains "dologic for computed function" with_dyn "function [30:0] dologic"

let test_lang_dispatch () =
  Alcotest.(check (option string))
    "pascal ext" (Some ".p")
    (Option.map Codegen.extension (Codegen.lang_of_string "PASCAL"));
  Alcotest.(check (option string))
    "ml ext" (Some ".ml")
    (Option.map Codegen.extension (Codegen.lang_of_string "ocaml"));
  Alcotest.(check (option string))
    "c ext" (Some ".c")
    (Option.map Codegen.extension (Codegen.lang_of_string "c"));
  Alcotest.(check (option string))
    "verilog ext" (Some ".v")
    (Option.map Codegen.extension (Codegen.lang_of_string "Verilog"));
  Alcotest.(check bool) "unknown" true (Codegen.lang_of_string "fortran" = None)

let () =
  Alcotest.run "codegen"
    [
      ( "figures",
        [
          Alcotest.test_case "figure 4.1 (alu)" `Quick test_fig41_pascal;
          Alcotest.test_case "figure 4.2 (selector)" `Quick test_fig42_pascal;
          Alcotest.test_case "figure 4.3 (memory)" `Quick test_fig43_pascal;
          Alcotest.test_case "constant memory op" `Quick
            test_constant_memory_op_is_specialized;
          Alcotest.test_case "temp elision (5.4)" `Quick test_temp_elision;
          Alcotest.test_case "temp kept when traced" `Quick test_temp_kept_when_traced;
          Alcotest.test_case "trace statements" `Quick test_traced_components_in_pascal;
        ] );
      ( "expressions",
        [
          Alcotest.test_case "pascal" `Quick test_expression_pascal;
          Alcotest.test_case "ocaml" `Quick test_expression_ocaml;
          Alcotest.test_case "c" `Quick test_expression_c;
          Alcotest.test_case "shift down" `Quick test_expression_shift_down;
          Alcotest.test_case "whole/const" `Quick test_expression_whole;
          Alcotest.test_case "lowering terms" `Quick test_lower_terms;
          Alcotest.test_case "constant folding" `Quick test_lower_constant_folding;
        ] );
      ( "backends",
        [
          Alcotest.test_case "appendix E fidelity" `Quick test_appendix_e_fidelity;
          Alcotest.test_case "ocaml shape" `Quick test_ocaml_backend_shape;
          Alcotest.test_case "c shape" `Quick test_c_backend_shape;
          Alcotest.test_case "verilog shape" `Quick test_verilog_shape;
          Alcotest.test_case "verilog expressions" `Quick test_verilog_expression;
          Alcotest.test_case "verilog selector and io" `Quick
            test_verilog_selector_and_io;
          Alcotest.test_case "verilog dologic" `Quick
            test_verilog_dologic_only_when_needed;
          Alcotest.test_case "language dispatch" `Quick test_lang_dispatch;
        ] );
    ]
