(* Waveform capture: run the divide-by-8 chain and emit a VCD file any
   standard waveform viewer (GTKWave etc.) can open.

     dune exec examples/waveform.exe
*)

let () =
  let analysis = Asim.load_string Asim.Specs.divider in
  let machine = Asim.machine ~config:Asim.Machine.quiet_config analysis in
  let vcd = Asim.Vcd.record machine ~cycles:16 in
  let path = Filename.concat (Filename.get_temp_dir_name ()) "divider.vcd" in
  let oc = open_out path in
  output_string oc vcd;
  close_out oc;
  Printf.printf "wrote %s (%d bytes); first lines:\n\n" path (String.length vcd);
  String.split_on_char '\n' vcd
  |> List.filteri (fun i _ -> i < 30)
  |> List.iter print_endline
