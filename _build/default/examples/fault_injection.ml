(* Design verification by fault injection (§2.3.2): "the process of
   inserting a fault in the specification to cause errors (by design) in the
   simulation run."

   We inject faults into the Gray-code generator and compare traces against
   the healthy run.

     dune exec examples/fault_injection.exe
*)

let run_with faults =
  let analysis = Asim.load_string Asim.Specs.gray_code in
  let sink, lines = Asim.Trace.list_sink () in
  let config = { Asim.Machine.quiet_config with trace = sink; faults } in
  let machine = Asim.machine ~config analysis in
  Asim.Machine.run machine ~cycles:16;
  lines ()

let compare_runs label faults =
  let healthy = run_with Asim.Fault.none in
  let faulty = run_with faults in
  let diffs =
    List.filter (fun (a, b) -> a <> b) (List.combine healthy faulty)
  in
  Printf.printf "%s: %d of %d cycles diverge\n" label (List.length diffs)
    (List.length healthy);
  List.iteri
    (fun i (h, f) ->
      if i < 4 then Printf.printf "    healthy: %s\n    faulty:  %s\n" h f)
    diffs;
  print_newline ()

let () =
  print_endline "healthy reference:";
  List.iter print_endline (run_with Asim.Fault.none);
  print_newline ();

  (* A stuck-at fault on the XOR output: every Gray value collapses. *)
  compare_runs "gray stuck at 0 (all cycles)" [ Asim.Fault.stuck_at "gray" 0 ];

  (* A transient single-bit flip: diverges only inside the window. *)
  compare_runs "gray bit 2 flipped during cycles 5-8"
    [ Asim.Fault.flip_bit ~first_cycle:5 ~last_cycle:8 "gray" 2 ];

  (* A fault in the *state* (the counter register) corrupts every later
     cycle — exactly the catastrophic-propagation case §2.3.2 warns about. *)
  compare_runs "counter register bit 0 flipped at cycle 5"
    [ Asim.Fault.flip_bit ~first_cycle:5 ~last_cycle:5 "count" 0 ];

  (* Scale the idea up: inject *every* single stuck-at fault and measure how
     many this 16-cycle workload detects — fault coverage. *)
  let analysis = Asim.load_string Asim.Specs.gray_code in
  let faults = Asim.Coverage.stuck_at_faults ~bits_per_component:6 analysis in
  let report =
    Asim.Coverage.run
      ~engine:(fun config a -> Asim.Compile.create ~config a)
      analysis ~faults
  in
  print_string (Asim.Coverage.to_string report);
  print_endline
    "(the undetected faults sit in counter bits the 16-cycle run never reaches\n\
     \u{2014} the workload, not the design, is what needs extending)"
