(* The abstraction ladder of §2.2, end to end on one machine.

   The thesis names six description levels; this repository simulates the
   Itty Bitty Stack Machine at three of them and checks they agree:

     instruction-set level  (Asim_stackm.Ispsim)   — fastest, no timing
     register-transfer level (Asim.Compile)        — the paper's subject
     logic-gate level       (Asim_gates.Circuit)   — slowest, most detail

     dune exec examples/gate_level.exe
*)

let time f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

let () =
  let analysis =
    Asim.Analysis.analyze
      (Asim_stackm.Microcode.spec ~program:Asim_stackm.Programs.sieve ())
  in

  (* How the gate level realizes each component. *)
  let gates = Asim_gates.Circuit.of_analysis analysis in
  print_endline "gate-level realization of the stack machine:";
  print_endline (Asim_gates.Circuit.describe gates);
  let s = Asim_gates.Circuit.stats gates in
  Printf.printf "\ntotal: %d gates, %d flip-flops, %d behavioral macros\n\n"
    s.Asim_gates.Circuit.gate_count s.dff_count s.macro_count;

  (* Run the sieve at all three levels. *)
  let primes_isp, t_isp =
    time (fun () -> Asim_stackm.Ispsim.run_collect_outputs Asim_stackm.Programs.sieve)
  in
  let primes_rtl, t_rtl =
    time (fun () ->
        Asim_stackm.Programs.run_collect_outputs ~engine:`Compiled
          Asim_stackm.Programs.sieve)
  in
  let primes_gates, t_gates =
    time (fun () ->
        let io, events = Asim.Io.recording () in
        let c = Asim_gates.Circuit.of_analysis ~io analysis in
        Asim_gates.Circuit.run c ~cycles:Asim_stackm.Programs.sieve_cycles;
        List.filter_map
          (function Asim.Io.Output { data; _ } -> Some data | _ -> None)
          (events ()))
  in
  assert (primes_isp = primes_rtl && primes_rtl = primes_gates);
  Printf.printf "all three levels emit: %s\n\n"
    (String.concat " " (List.map string_of_int primes_rtl));
  Printf.printf "%-28s %10s\n" "level" "seconds";
  Printf.printf "%-28s %10.4f  (1277 instructions)\n" "instruction set (ISP)" t_isp;
  Printf.printf "%-28s %10.4f  (5545 cycles)" "register transfer (RTL)" t_rtl;
  print_newline ();
  Printf.printf "%-28s %10.4f  (5545 cycles through %d gates)\n" "logic gate" t_gates
    s.Asim_gates.Circuit.gate_count;
  print_endline
    "\nEach step down simulates slower and reveals more — the §2.2 ladder."
