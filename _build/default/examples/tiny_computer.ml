(* The Appendix F tiny computer: a 10-bit, five-instruction microprocessor
   whose specification maps one-to-one onto catalog hardware.

     dune exec examples/tiny_computer.exe
*)

let () =
  let image = Asim_tinyc.Machine.demo_image in
  print_endline "program:";
  print_string (Asim_tinyc.Asm.disassemble image);
  print_newline ();

  (* Watch the first few instructions execute, four cycles each. *)
  let spec =
    Asim_tinyc.Machine.spec ~traced:[ "pc"; "ir"; "ac"; "borrow" ] ~program:image ()
  in
  let analysis = Asim.Analysis.analyze spec in
  let buf = Buffer.create 1024 in
  let config = { Asim.Machine.quiet_config with trace = Asim.Trace.buffer_sink buf } in
  let machine = Asim.machine ~config analysis in
  Asim.Machine.run machine ~cycles:24;
  print_endline "first six instructions (4 cycles each):";
  print_string (Buffer.contents buf);

  (* Run to completion and check the computation: 10 - 3 counted down. *)
  let obs = Asim_tinyc.Machine.run image in
  Printf.printf "\nafter %d cycles: pc=%d (halt spin), borrow=%d, ac=%d\n"
    Asim_tinyc.Machine.demo_cycles obs.Asim_tinyc.Machine.pc obs.borrow obs.ac;

  (* The §5.3 construction story: map the spec onto shelf parts. *)
  let net = Asim_netlist.Synth.synthesize spec in
  print_endline "\nhardware realization (Appendix F):";
  print_endline (Asim_netlist.Synth.instances_to_string net);
  print_endline "\nbill of materials:";
  print_endline (Asim_netlist.Synth.bom_to_string net)
