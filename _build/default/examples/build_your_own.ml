(* Building a machine programmatically — the library-as-API route.

   Everything the text syntax can say, the [Asim.Expr]/[Asim.Component]
   constructors can say directly; machine generators (like the stack
   machine's microcode builder) work this way.  Here: a saturating
   up/down counter with an external direction input, assembled in OCaml,
   then inspected, simulated, synthesized and exported.

     dune exec examples/build_your_own.exe
*)

open Asim

let spec =
  let e = Expr.of_atoms in
  let alu name fn left right = { Component.name; kind = Component.Alu { fn; left; right } } in
  let sel name select cases =
    { Component.name; kind = Component.Selector { select; cases = Array.of_list cases } }
  in
  let mem name addr data op cells init =
    { Component.name; kind = Component.Memory { addr; data; op; cells; init } }
  in
  let components =
    [
      (* direction flag flips every 10 cycles: timer counts 0..9 *)
      alu "tick" (e [ Expr.num 4 ]) (e [ Expr.ref_ "timer" ]) (e [ Expr.num 1 ]);
      alu "wrap" (e [ Expr.num 12 ]) (e [ Expr.ref_ "timer" ]) (e [ Expr.num 9 ]);
      sel "nexttimer" (e [ Expr.ref_bit "wrap" 0 ]) [ e [ Expr.ref_ "tick" ]; e [ Expr.num 0 ] ];
      alu "nextdir" (e [ Expr.num 10 ]) (e [ Expr.ref_ "dir" ]) (e [ Expr.ref_bit "wrap" 0 ]);
      (* the counter: +1 or -1 by direction, saturating at 0 and 15 *)
      alu "up" (e [ Expr.num 4 ]) (e [ Expr.ref_ "count" ]) (e [ Expr.num 1 ]);
      alu "down" (e [ Expr.num 5 ]) (e [ Expr.ref_ "count" ]) (e [ Expr.num 1 ]);
      alu "attop" (e [ Expr.num 12 ]) (e [ Expr.ref_ "count" ]) (e [ Expr.num 15 ]);
      alu "atbottom" (e [ Expr.num 12 ]) (e [ Expr.ref_ "count" ]) (e [ Expr.num 0 ]);
      (* select on {dir, at-limit}: 2 bits *)
      sel "limit" (e [ Expr.ref_bit "dir" 0 ])
        [ e [ Expr.ref_bit "attop" 0 ]; e [ Expr.ref_bit "atbottom" 0 ] ];
      sel "step" (e [ Expr.ref_bit "dir" 0 ]) [ e [ Expr.ref_ "up" ]; e [ Expr.ref_ "down" ] ];
      sel "nextcount" (e [ Expr.ref_bit "limit" 0 ])
        [ e [ Expr.ref_ "step" ]; e [ Expr.ref_ "count" ] ];
      mem "timer" (e [ Expr.num 0 ]) (e [ Expr.ref_ "nexttimer" ]) (e [ Expr.num 1 ]) 1 None;
      mem "dir" (e [ Expr.num 0 ]) (e [ Expr.ref_bit "nextdir" 0 ]) (e [ Expr.num 1 ]) 1 None;
      mem "count" (e [ Expr.num 0 ]) (e [ Expr.ref_range "nextcount" 0 4 ]) (e [ Expr.num 1 ]) 1 None;
    ]
  in
  let decls =
    List.map
      (fun (c : Component.t) ->
        { Spec.name = c.name; traced = List.mem c.name [ "count"; "dir" ] })
      components
  in
  Spec.make ~comment:" saturating up/down counter, built through the API" ~cycles:40
    ~decls components

let () =
  (* the canonical text form round-trips through the parser *)
  print_endline "canonical source:";
  print_string (Pretty.spec spec);
  assert (Parser.parse_string (Pretty.spec spec) = spec);

  let analysis = Analysis.analyze spec in
  Printf.printf "\nevaluation order: %s\n\n"
    (String.concat " " (List.map (fun (c : Component.t) -> c.name) analysis.Analysis.order));

  (* simulate: watch the count rise, saturate, and fall *)
  let machine = machine ~config:Machine.quiet_config analysis in
  let series =
    List.init 40 (fun _ ->
        Machine.run machine ~cycles:1;
        machine.Machine.read "count")
  in
  Printf.printf "count: %s\n\n" (String.concat " " (List.map string_of_int series));

  (* and everything else applies to it too *)
  let net = Asim_netlist.Synth.synthesize spec in
  print_endline "hardware parts:";
  print_endline (Asim_netlist.Synth.bom_to_string net);
  let gates = Asim_gates.Circuit.of_analysis analysis in
  let s = Asim_gates.Circuit.stats gates in
  Printf.printf "\ngate level: %d gates, %d flip-flops\n" s.Asim_gates.Circuit.gate_count
    s.Asim_gates.Circuit.dff_count
