(* The thesis's flagship workload: the Itty Bitty Stack Machine running the
   Sieve of Eratosthenes (Appendix D), 5545 clock cycles.

     dune exec examples/sieve.exe
*)

let time label f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  Printf.printf "%-34s %8.3f s\n%!" label (Unix.gettimeofday () -. t0);
  v

let () =
  Printf.printf "Program ROM (%d words), disassembled:\n\n"
    (Array.length Asim_stackm.Programs.sieve);
  print_string (Asim_stackm.Isa.disassemble Asim_stackm.Programs.sieve);
  print_newline ();

  (* The verbatim thesis program under both engines. *)
  let primes_interp =
    time "ASIM (interpreter), 5545 cycles" (fun () ->
        Asim_stackm.Programs.run_collect_outputs ~engine:`Interp
          Asim_stackm.Programs.sieve)
  in
  let primes_compiled =
    time "ASIM II (compiled), 5545 cycles" (fun () ->
        Asim_stackm.Programs.run_collect_outputs ~engine:`Compiled
          Asim_stackm.Programs.sieve)
  in
  assert (primes_interp = primes_compiled);
  Printf.printf "\nprimes: %s\n"
    (String.concat " " (List.map string_of_int primes_compiled));

  (* The same algorithm rebuilt with the assembler (recovered ISA). *)
  let primes_reassembled =
    Asim_stackm.Programs.run_collect_outputs
      ~cycles:Asim_stackm.Demos.sieve_reassembled_cycles
      Asim_stackm.Demos.sieve_reassembled
  in
  Printf.printf "reassembled source agrees: %b\n" (primes_reassembled = primes_compiled);

  (* And two fresh programs on the same machine. *)
  Printf.printf "countdown 5: %s\n"
    (String.concat " "
       (List.map string_of_int
          (Asim_stackm.Programs.run_collect_outputs
             ~cycles:(Asim_stackm.Demos.countdown_cycles 5)
             (Asim_stackm.Demos.countdown 5))));
  Printf.printf "squares 6:   %s\n"
    (String.concat " "
       (List.map string_of_int
          (Asim_stackm.Programs.run_collect_outputs
             ~cycles:(Asim_stackm.Demos.squares_cycles 6)
             (Asim_stackm.Demos.squares 6))))
