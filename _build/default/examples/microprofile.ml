(* Microarchitectural statistics (§1.4): "execution cycles required, memory
   accesses, and other related information ... invaluable when the designer
   desires to view the internal states of a microprocessor."

     dune exec examples/microprofile.exe
*)

let () =
  (* The stack machine running the sieve: instruction mix, cycles per
     micro-sequence, CPI. *)
  print_endline "=== stack machine, Sieve of Eratosthenes ===\n";
  let report =
    Asim_stackm.Profile.analyze ~cycles:Asim_stackm.Programs.sieve_cycles
      Asim_stackm.Programs.sieve
  in
  print_string (Asim_stackm.Profile.to_string report);

  (* The tiny computer: generic value-occupancy profiling of any component —
     here the phase counter and the program counter. *)
  print_endline "\n=== tiny computer, demo program ===\n";
  let analysis =
    Asim.Analysis.analyze
      (Asim_tinyc.Machine.spec ~program:Asim_tinyc.Machine.demo_image ())
  in
  let machine = Asim.machine ~config:Asim.Machine.quiet_config analysis in
  let profiles =
    Asim.Profile.run machine ~cycles:Asim_tinyc.Machine.demo_cycles
      ~components:[ "pc"; "ir"; "borrow" ]
  in
  print_string (Asim.Profile.to_string profiles);
  let borrow = List.assoc "borrow" profiles in
  Printf.printf "borrow-flag duty cycle: %.1f%%\n"
    (100. *. Asim.Profile.duty_cycle borrow ~bit:0);

  (* Memory-access statistics come with every run (the paper's own list). *)
  print_newline ();
  print_endline (Asim.Stats.to_string machine.Asim.Machine.stats)
