(* Quickstart: describe hardware with the three ASIM II primitives, simulate
   it, and inspect the results.

   The circuit: an accumulating counter with a carry-out bit.  [inc] is an
   ALU adding 1 to the register's output; [count] is a 1-cell memory
   (a register) latching it each cycle.  Run with:

     dune exec examples/quickstart.exe
*)

let source =
  "# quickstart: counter with a carry-out at 8\n\
   count* inc carry* .\n\
   A inc 4 count 1\n\
   A carry 1 0 count.3\n\
   M count 0 inc 1 1\n\
   .\n"

let () =
  (* Parse and analyze.  [Asim.load_string] raises on malformed input; the
     analysis holds the dependency-sorted component order. *)
  let analysis = Asim.load_string source in
  Printf.printf "components: %d, evaluation order: %s\n\n"
    (List.length analysis.Asim.Analysis.spec.Asim.Spec.components)
    (String.concat " "
       (List.map (fun (c : Asim.Component.t) -> c.name) analysis.Asim.Analysis.order));

  (* Build a machine.  [Compiled] is the paper's contribution (ASIM II);
     [Interpreter] is the ASIM baseline.  Both behave identically. *)
  let buf = Buffer.create 256 in
  let config = { Asim.Machine.quiet_config with trace = Asim.Trace.buffer_sink buf } in
  let machine = Asim.machine ~config ~engine:Asim.Compiled analysis in

  (* Run twelve cycles and show the per-cycle trace of starred components. *)
  Asim.Machine.run machine ~cycles:12;
  print_string (Buffer.contents buf);

  (* Inspect state directly: current outputs and memory cells. *)
  Printf.printf "\nafter 12 cycles: count=%d carry=%d cell=%d\n"
    (machine.Asim.Machine.read "count")
    (machine.Asim.Machine.read "carry")
    (machine.Asim.Machine.read_cell "count" 0);

  (* Statistics come for free (§1.4: cycles, memory accesses). *)
  print_newline ();
  print_endline (Asim.Stats.to_string machine.Asim.Machine.stats)
