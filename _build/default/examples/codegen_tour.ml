(* Regenerates the thesis's code-generation figures:

   - Figure 4.1: ALU specification and generated code (generic [dologic]
     call vs the §4.4 constant-function inline optimization)
   - Figure 4.2: Selector specification and the [case] it becomes
   - Figure 4.3: Memory specification with initial values — initialization,
     operation dispatch, and trace statements

   ...in all three backends: Pascal (the original's target), OCaml and C.

     dune exec examples/codegen_tour.exe
*)

let fig41 =
  "# Figure 4.1: ALU specification\n\
   alu add compute left .\n\
   A alu compute left 3048\n\
   A add 4 left 3048\n\
   A compute 1 0 7\n\
   A left 1 0 1\n\
   .\n"

let fig42 =
  "# Figure 4.2: Selector specification\n\
   selector index value0 value1 value2 value3 .\n\
   S selector index value0 value1 value2 value3\n\
   A index 1 0 2\n\
   A value0 1 0 10\n\
   A value1 1 0 11\n\
   A value2 1 0 12\n\
   A value3 1 0 13\n\
   .\n"

let fig43 =
  "# Figure 4.3: Memory specification with initial values\n\
   memory address data operation .\n\
   M memory address data operation -4 12 34 56 78\n\
   A address 1 0 1\n\
   A data 1 0 99\n\
   A operation 1 0 13\n\
   .\n"

let section title = Printf.printf "\n==================== %s ====================\n" title

let tour name source =
  let analysis = Asim.load_string source in
  section (name ^ " — specification");
  print_string source;
  List.iter
    (fun lang ->
      section
        (Printf.sprintf "%s — generated %s" name
           (Asim_codegen.Codegen.lang_to_string lang));
      print_string (Asim_codegen.Codegen.generate lang analysis))
    [ Asim_codegen.Codegen.Pascal; Asim_codegen.Codegen.Ocaml; Asim_codegen.Codegen.C ]

let () =
  tour "Figure 4.1" fig41;
  tour "Figure 4.2" fig42;
  tour "Figure 4.3" fig43
