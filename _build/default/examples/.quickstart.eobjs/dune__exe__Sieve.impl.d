examples/sieve.ml: Array Asim_stackm List Printf String Unix
