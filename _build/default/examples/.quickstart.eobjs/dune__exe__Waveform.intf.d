examples/waveform.mli:
