examples/microprofile.mli:
