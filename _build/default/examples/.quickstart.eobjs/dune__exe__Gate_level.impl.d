examples/gate_level.ml: Asim Asim_gates Asim_stackm List Printf String Unix
