examples/quickstart.ml: Asim Buffer List Printf String
