examples/tiny_computer.ml: Asim Asim_netlist Asim_tinyc Buffer Printf
