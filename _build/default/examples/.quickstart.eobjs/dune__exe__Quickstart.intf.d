examples/quickstart.mli:
