examples/build_your_own.ml: Analysis Array Asim Asim_gates Asim_netlist Component Expr List Machine Parser Pretty Printf Spec String
