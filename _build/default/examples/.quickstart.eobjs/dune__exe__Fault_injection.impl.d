examples/fault_injection.ml: Asim List Printf
