examples/microprofile.ml: Asim Asim_stackm Asim_tinyc List Printf
