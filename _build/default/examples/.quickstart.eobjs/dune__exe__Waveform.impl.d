examples/waveform.ml: Asim Filename List Printf String
