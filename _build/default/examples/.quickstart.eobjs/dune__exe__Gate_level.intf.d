examples/gate_level.mli:
