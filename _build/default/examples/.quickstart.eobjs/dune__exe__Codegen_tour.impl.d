examples/codegen_tour.ml: Asim Asim_codegen List Printf
