examples/tiny_computer.mli:
