examples/sieve.mli:
