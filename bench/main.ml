(* Benchmark harness: regenerates every table and figure of the thesis's
   evaluation, plus the ablations called out in DESIGN.md.

     dune exec bench/main.exe            # figures + Bechamel micro-benchmarks
     dune exec bench/main.exe -- quick   # skip the Bechamel pass

   Figures:
   - Figure 3.1  bit-concatenation layout
   - Figure 4.1  ALU code generation (generic vs optimized)
   - Figure 4.2  Selector code generation
   - Figure 4.3  Memory code generation
   - Figure 5.1  execution-time comparison of ASIM and ASIM II on the stack
                 machine sieve (5545 cycles)
*)

open Bechamel
open Toolkit

let hr title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* ------------------------------------------------------------------ *)
(* Figure 3.1                                                          *)
(* ------------------------------------------------------------------ *)

let figure_3_1 () =
  hr "Figure 3.1 — bit concatenation: mem.3.4,#01,count.1";
  let expr = Asim.Parser.parse_expr "mem.3.4,#01,count.1" in
  let mem = 0b11000 and count = 0b10 in
  let v =
    Asim.Expr.eval ~read:(function "mem" -> mem | _ -> count) expr
  in
  Printf.printf "mem   = %s (bits 3..4 = 11)\n" (Asim.Bits.to_binary_string ~width:8 mem);
  Printf.printf "count = %s (bit 1 = 1)\n" (Asim.Bits.to_binary_string ~width:8 count);
  Printf.printf "mem.3.4,#01,count.1 = %s (= %d): fields packed msb-first\n"
    (Asim.Bits.to_binary_string ~width:5 v)
    v;
  Printf.printf "width = %d bits\n" (Asim.Expr.width expr)

(* ------------------------------------------------------------------ *)
(* Figures 4.1 / 4.2 / 4.3                                             *)
(* ------------------------------------------------------------------ *)

let show_spec_and_lines title source ~pick =
  hr title;
  print_string "Specification:\n\n";
  String.split_on_char '\n' source
  |> List.iteri (fun i line -> if i > 0 && line <> "" && line <> "." then Printf.printf "  %s\n" line);
  print_string "\nCode generated (Pascal backend):\n\n";
  let code = Asim_codegen.Pascal.generate (Asim.load_string source) in
  String.split_on_char '\n' code
  |> List.iter (fun line ->
         let t = String.trim line in
         if pick t then Printf.printf "  %s\n" t)

let starts_with prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

let figure_4_1 () =
  show_spec_and_lines
    "Figure 4.1 — ALU specification and code generated"
    "# fig 4.1\nalu add compute left .\nA alu compute left 3048\nA add 4 left 3048\nA compute 1 0 7\nA left 1 0 1\n.\n"
    ~pick:(fun l -> starts_with "ljbalu :=" l || starts_with "ljbadd :=" l)

let figure_4_2 () =
  show_spec_and_lines
    "Figure 4.2 — Selector specification and code generated"
    "# fig 4.2\nselector index value0 value1 value2 value3 .\nS selector index value0 value1 value2 value3\nA index 1 0 2\nA value0 1 0 10\nA value1 1 0 11\nA value2 1 0 12\nA value3 1 0 13\n.\n"
    ~pick:(fun l ->
      starts_with "case ljbindex" l || starts_with "0:" l || starts_with "1:" l
      || starts_with "2:" l || starts_with "3:" l || l = "end;")

let figure_4_3 () =
  show_spec_and_lines
    "Figure 4.3 — Memory specification and code generated"
    "# fig 4.3\nmemory address data operation .\nM memory address data operation -4 12 34 56 78\nA address 1 0 1\nA data 1 0 99\nA operation 1 0 13\n.\n"
    ~pick:(fun l ->
      starts_with "ljbmemory[" l || starts_with "case land(opnmemory" l
      || starts_with "tempmemory :=" l || starts_with "soutput" l
      || starts_with "if land(opnmemory" l || starts_with "writeln('Write" l
      || starts_with "writeln('Read" l)

(* ------------------------------------------------------------------ *)
(* Figure 5.1                                                          *)
(* ------------------------------------------------------------------ *)

let time f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

let sieve_analysis () =
  Asim.Analysis.analyze
    (Asim_stackm.Microcode.spec ~cycles:Asim_stackm.Programs.sieve_cycles
       ~program:Asim_stackm.Programs.sieve ())

(* Time one engine running the 5545-cycle sieve [reps] times and keep the
   best run.  Min, not mean: scheduler noise and GC pauses only ever add
   time, so the minimum is the least-contaminated estimate (and matches
   what the benchkit harness reports). *)
let sim_time ~reps build =
  let analysis = sieve_analysis () in
  (* Building is part of "preparation", not simulation. *)
  let machines = List.init reps (fun _ -> build analysis) in
  List.fold_left
    (fun best m ->
      let (), t =
        time (fun () ->
            Asim.Machine.run m ~cycles:Asim_stackm.Programs.sieve_cycles)
      in
      Float.min best t)
    infinity machines

let figure_5_1 () =
  hr "Figure 5.1 — execution time comparison of ASIM and ASIM II";
  Printf.printf
    "Workload: Itty Bitty Stack Machine running the Sieve of Eratosthenes,\n\
     5545 cycles (the paper's exact configuration).  Paper timings were on a\n\
     VAX 11/780; ours are on this machine — compare shapes and ratios, not\n\
     absolute numbers.\n\n";

  let reps = 5 in
  (* ASIM: read the specification into tables, then interpret. *)
  let _, asim_prepare =
    time (fun () ->
        for _ = 1 to reps do
          ignore (Asim.Interp.create ~config:Asim.Machine.quiet_config (sieve_analysis ()))
        done)
  in
  let asim_prepare = asim_prepare /. float_of_int reps in
  let asim_sim =
    sim_time ~reps (fun a -> Asim.Interp.create ~config:Asim.Machine.quiet_config a)
  in

  (* ASIM II: generate a simulator program, compile it, execute it. *)
  let pipeline =
    Asim_codegen.Pipeline.run ~cycles:Asim_stackm.Programs.sieve_cycles
      ~lang:Asim_codegen.Codegen.Ocaml (sieve_analysis ())
  in

  (* ASIM II, in-process variant: compile the spec to closures. *)
  let _, closures_prepare =
    time (fun () ->
        for _ = 1 to reps do
          ignore (Asim.Compile.create ~config:Asim.Machine.quiet_config (sieve_analysis ()))
        done)
  in
  let closures_prepare = closures_prepare /. float_of_int reps in
  let closures_sim =
    sim_time ~reps (fun a -> Asim.Compile.create ~config:Asim.Machine.quiet_config a)
  in

  Printf.printf "%-46s %12s %12s\n" "" "paper (s)" "here (s)";
  let row label paper here = Printf.printf "%-46s %12s %12.4f\n" label paper here in
  Printf.printf "ASIM (interpreter)\n";
  row "  Generate tables" "10.8" asim_prepare;
  row "  Simulation time" "310.6" asim_sim;
  (match pipeline with
  | Ok r ->
      let t = r.Asim_codegen.Pipeline.timings in
      Printf.printf "ASIM II (generate + compile + execute)\n";
      row "  Generate code" "34.2" t.Asim_codegen.Pipeline.generate_s;
      row "  Compile" "43.2" t.Asim_codegen.Pipeline.compile_s;
      row "  Simulation time" "15.0" t.Asim_codegen.Pipeline.run_s;
      Printf.printf "ASIM II (in-process closure compiler)\n";
      row "  Compile to closures" "-" closures_prepare;
      row "  Simulation time" "-" closures_sim;
      Printf.printf "Traditional methods (reported, not measured)\n";
      Printf.printf "%-46s %12s %12s\n" "  Generate prototype" "100000" "-";
      Printf.printf "%-46s %12s %12s\n" "  Run prototype" "0.01" "-";
      print_newline ();
      let sim_ratio = asim_sim /. max 1e-9 t.Asim_codegen.Pipeline.run_s in
      let closure_ratio = asim_sim /. max 1e-9 closures_sim in
      let end_to_end =
        (asim_prepare +. asim_sim)
        /. max 1e-9
             (t.Asim_codegen.Pipeline.generate_s
             +. t.Asim_codegen.Pipeline.compile_s
             +. t.Asim_codegen.Pipeline.run_s)
      in
      Printf.printf "simulation-only speedup (paper: ~20x, abstract: \"approximately\n";
      Printf.printf "an order of magnitude\"):                        %6.1fx\n" sim_ratio;
      Printf.printf "closure-engine simulation speedup:              %6.1fx\n" closure_ratio;
      Printf.printf "end-to-end speedup incl. preparation (paper: ~2.5x): %.2fx\n" end_to_end;

      (* Where the crossover falls: the paper's extra preparation (66.6 s)
         was repaid after ~1250 cycles, so its 5545-cycle workload showed an
         end-to-end win.  Our compiler is relatively more expensive per
         cycle saved, so the crossover sits at more cycles. *)
      let interp_per_cycle = asim_sim /. 5545. in
      let binary_per_cycle = t.Asim_codegen.Pipeline.run_s /. 5545. in
      let extra_prep =
        t.Asim_codegen.Pipeline.generate_s +. t.Asim_codegen.Pipeline.compile_s
        -. asim_prepare
      in
      let crossover =
        extra_prep /. max 1e-12 (interp_per_cycle -. binary_per_cycle)
      in
      Printf.printf "\nend-to-end crossover: ASIM II wins beyond ~%.0f cycles\n" crossover;
      Printf.printf "(paper: ~%.0f cycles, so its 5545-cycle run was already past it)\n"
        (66.6 /. ((310.6 -. 15.0) /. 5545.));
      (* Verify with a long run: the re-assembled sieve parks in a halt
         spin, so it can execute any cycle budget. *)
      let long = int_of_float (4. *. crossover) in
      let long_spec () =
        Asim.Analysis.analyze
          (Asim_stackm.Microcode.spec ~program:Asim_stackm.Demos.sieve_reassembled ())
      in
      let _, interp_long =
        time (fun () ->
            let m = Asim.Interp.create ~config:Asim.Machine.quiet_config (long_spec ()) in
            Asim.Machine.run m ~cycles:long)
      in
      (match
         Asim_codegen.Pipeline.run ~cycles:long ~lang:Asim_codegen.Codegen.Ocaml
           (long_spec ())
       with
      | Ok r2 ->
          let t2 = r2.Asim_codegen.Pipeline.timings in
          let e2e =
            (asim_prepare +. interp_long)
            /. (t2.Asim_codegen.Pipeline.generate_s
               +. t2.Asim_codegen.Pipeline.compile_s
               +. t2.Asim_codegen.Pipeline.run_s)
          in
          Printf.printf
            "verification at %d cycles: ASIM %.3f s vs ASIM II %.3f s -> %.2fx end-to-end\n"
            long
            (asim_prepare +. interp_long)
            (t2.Asim_codegen.Pipeline.generate_s
            +. t2.Asim_codegen.Pipeline.compile_s
            +. t2.Asim_codegen.Pipeline.run_s)
            e2e
      | Error _ -> ())
  | Error e ->
      Printf.printf "ASIM II pipeline unavailable here (%s);\n" e;
      Printf.printf "in-process closure compiler stands in:\n";
      row "  Compile to closures" "34.2+43.2" closures_prepare;
      row "  Simulation time" "15.0" closures_sim;
      Printf.printf "simulation-only speedup (paper: ~20x): %6.1fx\n"
        (asim_sim /. max 1e-9 closures_sim))

(* ------------------------------------------------------------------ *)
(* Ablations (DESIGN.md)                                               *)
(* ------------------------------------------------------------------ *)

let figure_ablation () =
  hr "Ablation — §4.4 optimizations in the closure engine";
  let reps = 5 in
  let optimized =
    sim_time ~reps (fun a ->
        Asim.Compile.create ~config:Asim.Machine.quiet_config ~optimize:true a)
  in
  let unoptimized =
    sim_time ~reps (fun a ->
        Asim.Compile.create ~config:Asim.Machine.quiet_config ~optimize:false a)
  in
  let interp =
    sim_time ~reps (fun a -> Asim.Interp.create ~config:Asim.Machine.quiet_config a)
  in
  Printf.printf "sieve, 5545 cycles, seconds per run:\n";
  Printf.printf "  interpreter (symbol-table walk):        %.4f\n" interp;
  Printf.printf "  closures, optimizations disabled:       %.4f\n" unoptimized;
  Printf.printf "  closures, constant fn/op specialized:   %.4f\n" optimized;
  Printf.printf "optimization contribution: %.2fx of the closure engine's win\n"
    (unoptimized /. max 1e-9 optimized)

(* ------------------------------------------------------------------ *)
(* Scaling: the interpretation tax as specifications grow              *)
(* ------------------------------------------------------------------ *)

(* A synthetic machine with [n] chained adders feeding one register, so the
   combinational work grows linearly with [n]. *)
let chain_spec n =
  let open Asim in
  let open Asim.Expr in
  let alu name fn left right =
    { Asim.Component.name; kind = Asim.Component.Alu { fn; left; right } }
  in
  let first = alu "a0" [ num 4 ] [ ref_ "r" ] [ num 1 ] in
  let rest =
    List.init (n - 1) (fun i ->
        alu
          (Printf.sprintf "a%d" (i + 1))
          [ num 4 ]
          [ Expr.ref_range (Printf.sprintf "a%d" i) 0 15 ]
          [ num_w (i land 7) ~width:3 ])
  in
  let reg =
    {
      Asim.Component.name = "r";
      kind =
        Asim.Component.Memory
          {
            addr = [ num 0 ];
            data = [ Expr.ref_range (Printf.sprintf "a%d" (n - 1)) 0 15 ];
            op = [ num 1 ];
            cells = 1;
            init = None;
          };
    }
  in
  Asim.Analysis.analyze (Asim.Spec.make ((first :: rest) @ [ reg ]))

let figure_scaling () =
  hr "Extension — per-cycle cost vs specification size (who wins, where)";
  Printf.printf "%8s %16s %16s %8s\n" "ALUs" "interp ns/cycle" "compiled ns/cycle"
    "ratio";
  List.iter
    (fun n ->
      let analysis = chain_spec n in
      let cycles = max 200 (2_000_000 / n) in
      let per_cycle build =
        let m : Asim.Machine.t = build analysis in
        (* warm up *)
        Asim.Machine.run m ~cycles:10;
        let _, t = time (fun () -> Asim.Machine.run m ~cycles) in
        t /. float_of_int cycles *. 1e9
      in
      let interp =
        per_cycle (fun a -> Asim.Interp.create ~config:Asim.Machine.quiet_config a)
      in
      let compiled =
        per_cycle (fun a -> Asim.Compile.create ~config:Asim.Machine.quiet_config a)
      in
      Printf.printf "%8d %16.0f %16.0f %7.1fx\n" n interp compiled
        (interp /. compiled))
    [ 4; 16; 64; 256; 1024 ];
  Printf.printf
    "(the compiled engine wins at every size; the gap is the per-reference\n\
    \ symbol interpretation ASIM II eliminates)\n"

(* ------------------------------------------------------------------ *)
(* Levels of abstraction (§1.2, §1.3, §2.2): ISP vs RTL                *)
(* ------------------------------------------------------------------ *)

let figure_levels () =
  hr "Extension — abstraction levels: instruction set (ISP) vs register transfer";
  let reps = 5 in
  let instructions =
    let t = Asim_stackm.Ispsim.create Asim_stackm.Programs.sieve in
    Asim_stackm.Ispsim.run t
  in
  let _, isp_time =
    time (fun () ->
        for _ = 1 to reps do
          ignore (Asim_stackm.Ispsim.run (Asim_stackm.Ispsim.create Asim_stackm.Programs.sieve))
        done)
  in
  let isp_time = isp_time /. float_of_int reps in
  let rtl_time =
    sim_time ~reps (fun a -> Asim.Compile.create ~config:Asim.Machine.quiet_config a)
  in
  Printf.printf
    "sieve workload: %d instructions at the ISP level, %d cycles at the RTL\n"
    instructions Asim_stackm.Programs.sieve_cycles;
  Printf.printf "  cycles per instruction: %.2f (timing detail the ISP cannot see, §1.3)\n"
    (float_of_int Asim_stackm.Programs.sieve_cycles /. float_of_int instructions);
  Printf.printf "  ISP run %.5f s, compiled RTL run %.5f s -> ISP is %.0fx faster\n"
    isp_time rtl_time (rtl_time /. max 1e-9 isp_time);
  (* ...and one level further down: the boolean network of §2.2.2. *)
  let analysis = sieve_analysis () in
  let gates = Asim_gates.Circuit.of_analysis analysis in
  let g_stats = Asim_gates.Circuit.stats gates in
  let _, gate_time =
    time (fun () ->
        Asim_gates.Circuit.run gates ~cycles:Asim_stackm.Programs.sieve_cycles)
  in
  Printf.printf
    "  gate-level run %.4f s through %d gates / %d flip-flops / %d macros\n"
    gate_time g_stats.Asim_gates.Circuit.gate_count
    g_stats.Asim_gates.Circuit.dff_count g_stats.Asim_gates.Circuit.macro_count;
  Printf.printf "  ladder (per sieve run): ISP %.5f s < RTL %.5f s < gates %.4f s\n"
    isp_time rtl_time gate_time;
  Printf.printf
    "  (the classic trade: each level up simulates faster and reveals less —\n\
    \   the ISP gives no concurrency, timing, or interconnection data, §2.1.2)\n"

(* ------------------------------------------------------------------ *)
(* Batch throughput: same spec × 1..P worker domains                   *)
(* ------------------------------------------------------------------ *)

(* 64 identical jobs over the stack-machine sieve (5545 cycles each),
   executed at increasing pool widths.  Records jobs/sec, speedup vs one
   domain, and the compiled-spec cache hit rate to BENCH_batch.json, and
   checks that every width produces byte-identical result lines. *)
(* Serve under load: an in-process TCP server (hash-sharded worker
   domains, content-addressed spec store) driven by the load generator at
   256 concurrent connections.  Every connection uploads the counter spec
   (deduplicated to one store entry), then pipelines submit-by-hash jobs;
   the report proves zero dropped or duplicated replies and records the
   shard-cache hit rate those jobs enjoyed. *)
let figure_serve () =
  hr "Extension — serve under load: 256 TCP connections, submit-by-hash";
  let cores_online = Domain.recommended_domain_count () in
  let shards = max 1 (min 4 cores_online) in
  (* queue depth sized for the full offered load: this figure measures
     sustained throughput and latency, not the backpressure path (which
     test/test_serve.ml exercises on a deliberately tiny queue) *)
  let config =
    {
      Asim_serve.Server.default_config with
      Asim_serve.Server.shards;
      queue_depth = 2048;
    }
  in
  let server = Asim_serve.Server.create ~config () in
  let port =
    Asim_serve.Server.listen server (Unix.ADDR_INET (Unix.inet_addr_loopback, 0))
  in
  let th = Thread.create Asim_serve.Server.serve server in
  let report =
    Asim_serve.Loadgen.run
      {
        Asim_serve.Loadgen.default_config with
        Asim_serve.Loadgen.port;
        connections = 256;
        jobs_per_connection = 4;
        cycles = Some 2000;
      }
  in
  Asim_serve.Server.shutdown server;
  Thread.join th;
  print_string (Asim_serve.Loadgen.report_to_string report);
  Printf.printf "(%d shard domain(s), %d core(s) online)\n" shards cores_online;
  if
    report.Asim_serve.Loadgen.dropped > 0
    || report.Asim_serve.Loadgen.duplicates > 0
  then prerr_endline "WARNING: serve load run dropped or duplicated results";
  Asim_batch.Json.Obj
    [
      ("spec", Asim_batch.Json.String "counter");
      ("cycles_per_job", Asim_batch.Json.Int 2000);
      ("shards", Asim_batch.Json.Int shards);
      ("cores_online", Asim_batch.Json.Int cores_online);
      (* throughput on a starved core count is load-test plumbing, not a
         scaling claim — same honesty rule as the batch rows *)
      ("scaling_valid", Asim_batch.Json.Bool (cores_online > 1));
      ("loadgen", Asim_serve.Loadgen.report_to_json report);
    ]

let figure_batch ?serve () =
  hr "Extension — batch throughput: 64 sieve jobs across worker domains";
  let job_count = 64 in
  let manifest =
    List.init job_count (fun i ->
        Asim_batch.Json.to_string
          (Asim_batch.Proto.job_to_json
             {
               Asim_batch.Proto.id = Some (Printf.sprintf "sieve-%02d" i);
               trace_id = None;
               source = Asim_batch.Proto.Example "stack-machine-sieve";
               engine = Asim.Compiled;
               optimize = true;
               cycles = None;
               inputs = [];
               want = [ Asim_batch.Proto.Outputs ];
               timeout_s = None;
               opt = None;
             }))
  in
  let run_at ?tracer domains =
    let t = Asim_batch.Runner.create ?tracer () in
    let lines = ref manifest in
    let next () =
      match !lines with
      | [] -> None
      | line :: rest ->
          lines := rest;
          Some line
    in
    let results = ref [] in
    let emit line = results := line :: !results in
    let (), wall = time (fun () ->
        ignore (Asim_batch.Runner.process t ~jobs:domains ~next ~emit : int))
    in
    let summary = Asim_batch.Runner.summary t ~wall_s:wall in
    (summary, wall, List.rev !results)
  in
  let widths =
    let cores = Domain.recommended_domain_count () in
    List.filter (fun w -> w = 1 || w <= max 2 cores) [ 1; 2; 4; 8 ]
  in
  let runs = List.map (fun w -> (w, run_at w)) widths in
  let _, (_, base_wall, base_results) = List.hd runs in
  let byte_identical =
    List.for_all (fun (_, (_, _, results)) -> results = base_results) runs
  in
  Printf.printf "%8s %12s %12s %10s %10s\n" "domains" "wall (s)" "jobs/sec" "speedup"
    "cache hit";
  List.iter
    (fun (w, (summary, wall, _)) ->
      Printf.printf "%8d %12.3f %12.1f %9.2fx %9.1f%%\n" w wall
        summary.Asim_batch.Metrics.jobs_per_sec (base_wall /. wall)
        (100.0 *. Asim_batch.Cache.hit_rate summary.Asim_batch.Metrics.cache))
    runs;
  Printf.printf "results byte-identical across widths: %b\n" byte_identical;
  Printf.printf "(only %d core(s) online here; speedup needs real parallel hardware)\n"
    (Domain.recommended_domain_count ());
  (* Instrumentation overhead: the same 64 jobs at width 1 with a live
     tracer vs without.  Plain and traced runs are interleaved (so clock
     drift, GC state and cache warmth bias neither side) and each side
     takes its minimum, which filters scheduler noise; target < 3%. *)
  let overhead_reps = 5 in
  let plain_wall = ref infinity and traced_wall = ref infinity in
  let span_count = ref 0 in
  for _ = 1 to overhead_reps do
    let _, plain, _ = run_at 1 in
    plain_wall := Float.min !plain_wall plain;
    let tracer = Asim_obs.Tracer.create () in
    let _, traced, _ = run_at ~tracer 1 in
    span_count := Asim_obs.Tracer.event_count tracer;
    traced_wall := Float.min !traced_wall traced
  done;
  let plain_wall = !plain_wall and traced_wall = !traced_wall in
  let overhead_pct = 100.0 *. ((traced_wall /. plain_wall) -. 1.0) in
  Printf.printf
    "tracing overhead at width 1: plain %.3f s, traced %.3f s (%+.2f%%, %d spans)\n"
    plain_wall traced_wall overhead_pct !span_count;
  let cores_online = Domain.recommended_domain_count () in
  let json =
    Asim_batch.Json.Obj
      ([
        ("spec", Asim_batch.Json.String "stack-machine-sieve");
        ("engine", Asim_batch.Json.String "compiled");
        ("jobs", Asim_batch.Json.Int job_count);
        ("cycles_per_job", Asim_batch.Json.Int Asim_stackm.Programs.sieve_cycles);
        ("cores_online", Asim_batch.Json.Int cores_online);
        ("byte_identical", Asim_batch.Json.Bool byte_identical);
        ( "runs",
          Asim_batch.Json.List
            (List.map
               (fun (w, (summary, wall, _)) ->
                 (* A multi-domain "speedup" measured on a single online
                    core is scheduler noise, not scaling — tag the row
                    instead of reporting a meaningless ratio. *)
                 let scaling_valid = w = 1 || cores_online > 1 in
                 Asim_batch.Json.Obj
                   ([
                      ("domains", Asim_batch.Json.Int w);
                      ("wall_s", Asim_batch.Json.Float wall);
                      ( "jobs_per_sec",
                        Asim_batch.Json.Float summary.Asim_batch.Metrics.jobs_per_sec );
                      ("scaling_valid", Asim_batch.Json.Bool scaling_valid);
                    ]
                   @ (if scaling_valid then
                        [ ("speedup_vs_1", Asim_batch.Json.Float (base_wall /. wall)) ]
                      else [])
                   @ [
                       ( "cache_hit_rate",
                         Asim_batch.Json.Float
                           (Asim_batch.Cache.hit_rate summary.Asim_batch.Metrics.cache) );
                       ( "metrics",
                         Asim_batch.Metrics.to_json summary );
                     ]))
               runs) );
        ( "tracing_overhead",
          Asim_batch.Json.Obj
            [
              ("plain_wall_s", Asim_batch.Json.Float plain_wall);
              ("traced_wall_s", Asim_batch.Json.Float traced_wall);
              ("overhead_pct", Asim_batch.Json.Float overhead_pct);
              ("span_count", Asim_batch.Json.Int !span_count);
            ] );
      ]
      @ match serve with Some j -> [ ("serve", j) ] | None -> [])
  in
  let oc = open_out "BENCH_batch.json" in
  output_string oc (Asim_batch.Json.to_string json);
  output_char oc '\n';
  close_out oc;
  print_endline "wrote BENCH_batch.json"

(* ------------------------------------------------------------------ *)
(* Engine comparison: interp / compiled / lowered / flat (+ ablation)  *)
(* ------------------------------------------------------------------ *)

let figure_engines () =
  hr "Extension — engine comparison: flat kernel vs closures vs interpreter";
  let t = Asim_benchkit.Benchkit.run () in
  print_string (Asim_benchkit.Benchkit.table t);
  Asim_benchkit.Benchkit.write_json t ~path:"BENCH_engines.json";
  print_endline "wrote BENCH_engines.json";
  if not (Asim_benchkit.Benchkit.agree t) then
    prerr_endline "WARNING: engine differential check failed (see table above)"

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per table/figure           *)
(* ------------------------------------------------------------------ *)

let stepper build =
  (* A machine running the re-assembled sieve (it parks in a halt spin, so
     stepping beyond 5545 cycles is safe). *)
  let spec =
    Asim_stackm.Microcode.spec ~program:Asim_stackm.Demos.sieve_reassembled ()
  in
  let analysis = Asim.Analysis.analyze spec in
  let m : Asim.Machine.t = build analysis in
  Staged.stage (fun () -> m.Asim.Machine.step ())

let fig31_test =
  let expr = Asim.Parser.parse_expr "mem.3.4,#01,count.1" in
  Test.make ~name:"fig3.1/concat-eval"
    (Staged.stage (fun () ->
         ignore (Asim.Expr.eval ~read:(fun _ -> 0b11010) expr : int)))

let codegen_test name source =
  let analysis = Asim.load_string source in
  Test.make ~name (Staged.stage (fun () ->
      ignore (Asim_codegen.Pascal.generate analysis : string)))

let fig41_test =
  codegen_test "fig4.1/alu-codegen"
    "# f\nalu add compute left .\nA alu compute left 3048\nA add 4 left 3048\nA compute 1 0 7\nA left 1 0 1\n.\n"

let fig42_test =
  codegen_test "fig4.2/selector-codegen"
    "# f\ns i v0 v1 v2 v3 .\nS s i v0 v1 v2 v3\nA i 1 0 2\nA v0 1 0 1\nA v1 1 0 2\nA v2 1 0 3\nA v3 1 0 4\n.\n"

let fig43_test =
  codegen_test "fig4.3/memory-codegen"
    "# f\nm a d o .\nM m a d o -4 12 34 56 78\nA a 1 0 1\nA d 1 0 9\nA o 1 0 13\n.\n"

let fig51_interp_test =
  Test.make ~name:"fig5.1/asim-interp-step"
    (stepper (fun a -> Asim.Interp.create ~config:Asim.Machine.quiet_config a))

let fig51_compiled_test =
  Test.make ~name:"fig5.1/asim2-compiled-step"
    (stepper (fun a -> Asim.Compile.create ~config:Asim.Machine.quiet_config a))

let ablation_test =
  Test.make ~name:"ablation/asim2-unoptimized-step"
    (stepper (fun a ->
         Asim.Compile.create ~config:Asim.Machine.quiet_config ~optimize:false a))

let flat_test =
  Test.make ~name:"engines/flat-kernel-step"
    (stepper (fun a -> Asim.Flat.create ~config:Asim.Machine.quiet_config a))

let flat_full_test =
  Test.make ~name:"engines/flat-full-step"
    (stepper (fun a ->
         Asim.Flat.create ~config:Asim.Machine.quiet_config
           ~schedule:Asim.Flat.Full a))

let isp_level_test =
  (* Restart the image when it halts so every call executes a real
     instruction (creation cost amortizes over the ~1000-instruction run). *)
  let machine = ref (Asim_stackm.Ispsim.create Asim_stackm.Demos.sieve_reassembled) in
  Test.make ~name:"levels/isp-instruction"
    (Staged.stage (fun () ->
         if not (Asim_stackm.Ispsim.step !machine) then
           machine := Asim_stackm.Ispsim.create Asim_stackm.Demos.sieve_reassembled))

let gate_level_test =
  let analysis =
    Asim.Analysis.analyze
      (Asim_stackm.Microcode.spec ~program:Asim_stackm.Demos.sieve_reassembled ())
  in
  let c = Asim_gates.Circuit.of_analysis analysis in
  Test.make ~name:"levels/gate-cycle"
    (Staged.stage (fun () -> Asim_gates.Circuit.step c))

let appf_netlist_test =
  let spec = Asim_tinyc.Machine.spec ~program:Asim_tinyc.Machine.demo_image () in
  Test.make ~name:"appF/tinyc-netlist"
    (Staged.stage (fun () -> ignore (Asim_netlist.Synth.synthesize spec : Asim_netlist.Synth.t)))

let run_bechamel () =
  hr "Bechamel micro-benchmarks (ns per call, OLS on monotonic clock)";
  let tests =
    [
      fig31_test; fig41_test; fig42_test; fig43_test; fig51_interp_test;
      fig51_compiled_test; ablation_test; flat_test; flat_full_test;
      isp_level_test; gate_level_test; appf_netlist_test;
    ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ Instance.monotonic_clock ] (Test.make_grouped ~name:"g" [ test ]) in
      let analyzed = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          let ns =
            match Analyze.OLS.estimates ols_result with
            | Some (e :: _) -> e
            | _ -> nan
          in
          Printf.printf "  %-36s %12.1f ns/run\n" name ns)
        analyzed)
    tests

(* ------------------------------------------------------------------ *)

let () =
  let quick = Array.exists (fun a -> a = "quick") Sys.argv in
  let batch_only = Array.exists (fun a -> a = "batch") Sys.argv in
  let engines_only = Array.exists (fun a -> a = "engines") Sys.argv in
  if batch_only then figure_batch ~serve:(figure_serve ()) ()
  else if engines_only then figure_engines ()
  else begin
    figure_3_1 ();
    figure_4_1 ();
    figure_4_2 ();
    figure_4_3 ();
    figure_5_1 ();
    figure_ablation ();
    figure_scaling ();
    figure_levels ();
    figure_batch ~serve:(figure_serve ()) ();
    figure_engines ();
    if not quick then run_bechamel ()
  end;
  print_newline ()
