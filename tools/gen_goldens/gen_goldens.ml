(* Regenerate the checked-in golden files under test/goldens/.

   Run from the repository root after a deliberate backend change:

     dune exec tools/gen_goldens/gen_goldens.exe

   then review the git diff before committing. *)

open Asim
module Codegen = Asim_codegen.Codegen

let dir = Filename.concat "test" "goldens"

let write name contents =
  let path = Filename.concat dir name in
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc;
  Printf.printf "wrote %s (%d bytes)\n" path (String.length contents)

let backend name lang source =
  write name (Codegen.generate lang (load_string source))

let () =
  backend "counter.p" Codegen.Pascal Specs.counter;
  backend "counter.ml.golden" Codegen.Ocaml Specs.counter;
  backend "counter.c.golden" Codegen.C Specs.counter;
  backend "counter.v" Codegen.Verilog Specs.counter;
  backend "traffic.p" Codegen.Pascal Specs.traffic_light;
  backend "traffic.ml.golden" Codegen.Ocaml Specs.traffic_light;
  backend "traffic.c.golden" Codegen.C Specs.traffic_light;
  backend "traffic.v" Codegen.Verilog Specs.traffic_light;
  write "stackm.asim.golden"
    (Asim_core.Pretty.spec
       (Asim_stackm.Microcode.spec ~program:Asim_stackm.Programs.sieve ()))
